"""The experiment harness: one module per reproduced artifact.

``runner`` turns an :class:`~repro.experiments.runner.ExperimentConfig`
into an :class:`~repro.experiments.runner.ExperimentResult`;
``figures`` reproduces each figure of the paper; ``ablations`` covers
the design choices the paper reports tuning (monitor count, dynamic
thresholds, best-plan-so-far).
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    PRESETS,
    run_experiment,
)
from repro.experiments.figures import (
    ThroughputComparison,
    figure1_monitors,
    figure2_trace,
    throughput_figure,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "PRESETS",
    "ThroughputComparison",
    "figure1_monitors",
    "figure2_trace",
    "run_experiment",
    "throughput_figure",
]
