"""The experiment harness: one module per reproduced artifact.

``runner`` turns an :class:`~repro.experiments.runner.ExperimentConfig`
into an :class:`~repro.experiments.runner.ExperimentResult`;
``figures`` reproduces each figure of the paper; ``ablations`` covers
the design choices the paper reports tuning (monitor count, dynamic
thresholds, best-plan-so-far); ``executors`` is the pluggable
cell-execution protocol (inline / process pool / streamed TCP worker
pool) and ``wire`` its coordinator/worker transport; ``journal``
makes any executor's queue durable (checkpoint/restart) and
``scheduler`` orders it by expected cost (slowest cells first).
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    PRESETS,
    run_experiment,
)
from repro.experiments.engine import (
    BatchResult,
    ExperimentEngine,
    ExperimentJob,
    figure_suite_jobs,
    run_jobs,
    saturation_suite_jobs,
    write_artifact,
)
from repro.experiments.executors import (
    CellExecutor,
    CellResult,
    CellTask,
    InlineExecutor,
    PoolExecutor,
    StreamExecutor,
    execute_cell,
    make_executor,
    tasks_for_specs,
)
from repro.experiments.journal import (
    CellJournal,
    JournaledExecutor,
    JournalState,
    journaled_executor,
    load_journal,
)
from repro.experiments.scheduler import (
    CellScheduler,
    order_tasks,
)
from repro.experiments.figures import (
    ThroughputComparison,
    figure1_monitors,
    figure2_trace,
    throughput_figure,
)

__all__ = [
    "BatchResult",
    "CellExecutor",
    "CellJournal",
    "CellResult",
    "CellScheduler",
    "CellTask",
    "ExperimentConfig",
    "ExperimentEngine",
    "ExperimentJob",
    "ExperimentResult",
    "InlineExecutor",
    "JournalState",
    "JournaledExecutor",
    "PRESETS",
    "PoolExecutor",
    "StreamExecutor",
    "ThroughputComparison",
    "execute_cell",
    "figure1_monitors",
    "figure2_trace",
    "figure_suite_jobs",
    "journaled_executor",
    "load_journal",
    "make_executor",
    "order_tasks",
    "run_experiment",
    "run_jobs",
    "saturation_suite_jobs",
    "tasks_for_specs",
    "throughput_figure",
    "write_artifact",
]
