"""The experiment harness: one module per reproduced artifact.

``runner`` turns an :class:`~repro.experiments.runner.ExperimentConfig`
into an :class:`~repro.experiments.runner.ExperimentResult`;
``figures`` reproduces each figure of the paper; ``ablations`` covers
the design choices the paper reports tuning (monitor count, dynamic
thresholds, best-plan-so-far).
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    PRESETS,
    run_experiment,
)
from repro.experiments.engine import (
    BatchResult,
    ExperimentEngine,
    ExperimentJob,
    figure_suite_jobs,
    run_jobs,
    saturation_suite_jobs,
    write_artifact,
)
from repro.experiments.figures import (
    ThroughputComparison,
    figure1_monitors,
    figure2_trace,
    throughput_figure,
)

__all__ = [
    "BatchResult",
    "ExperimentConfig",
    "ExperimentEngine",
    "ExperimentJob",
    "ExperimentResult",
    "PRESETS",
    "ThroughputComparison",
    "figure1_monitors",
    "figure2_trace",
    "figure_suite_jobs",
    "run_experiment",
    "run_jobs",
    "saturation_suite_jobs",
    "throughput_figure",
    "write_artifact",
]
