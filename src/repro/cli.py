"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure``       reproduce one of the paper's figures (1, 2, 3, 4, 5)
``sweep``        client sweep (the CLAIM-SAT saturation experiment)
``ablation``     run one of the design ablations
``experiments``  fan a whole suite out across workers and write
                 ``BENCH_*.json`` artifacts
``query``        compile + execute one ad-hoc query and print the report
``monitors``     print the memory-monitor ladder

Examples
--------
::

    python -m repro figure 3 --preset smoke
    python -m repro experiments --suite figures --workers 4 --out bench
    python -m repro query --workload sales --seed 7
    python -m repro ablation gateways --clients 30
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.config import paper_server_config
from repro.experiments import (
    figure1_monitors,
    figure2_trace,
    throughput_figure,
)
from repro.experiments.ablations import (
    ablate_best_plan,
    ablate_dynamic_thresholds,
    ablate_gateway_count,
)
from repro.experiments.runner import PRESETS, make_workload
from repro.metrics.report import render_table
from repro.server.server import DatabaseServer
from repro.units import format_bytes, format_duration


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="smoke", choices=sorted(PRESETS),
                        help="fidelity/runtime preset")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for experiment fan-out")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CIDR'07 compilation-memory-throttling reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="reproduce a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    _add_common(fig)

    sweep = sub.add_parser("sweep", help="client-count saturation sweep")
    sweep.add_argument("--clients", type=int, nargs="+",
                       default=[5, 15, 30, 40])
    _add_common(sweep)

    abl = sub.add_parser("ablation", help="run a design ablation")
    abl.add_argument("which", choices=("gateways", "dynamic", "best-plan"))
    abl.add_argument("--clients", type=int, default=30)
    _add_common(abl)

    exp = sub.add_parser(
        "experiments",
        help="run a whole suite through the parallel engine and write "
             "BENCH_*.json artifacts")
    exp.add_argument("--suite", default="figures",
                     choices=("figures", "ablations", "saturation", "all"))
    exp.add_argument("--out", default="bench-artifacts",
                     help="directory for BENCH_*.json artifacts")
    _add_common(exp)

    query = sub.add_parser("query", help="run one ad-hoc query")
    query.add_argument("--workload", default="sales",
                       choices=("sales", "tpch", "oltp"))
    query.add_argument("--no-throttle", action="store_true")
    query.add_argument("--seed", type=int, default=7)

    sub.add_parser("monitors", help="print the monitor ladder")
    return parser


def cmd_figure(args) -> int:
    if args.number == 1:
        print(figure1_monitors())
        return 0
    if args.number == 2:
        trace = figure2_trace(seed=args.seed)
        print(trace.chart())
        return 0
    clients = {3: 30, 4: 35, 5: 40}[args.number]
    comparison = throughput_figure(clients, preset=args.preset,
                                   seed=args.seed, workers=args.workers)
    print(comparison.render())
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments.engine import run_jobs, saturation_suite_jobs

    # duplicate counts would be identical runs (same config, same
    # seed) and would collide as job names; keep first occurrences
    client_counts = list(dict.fromkeys(args.clients))
    jobs = saturation_suite_jobs(preset=args.preset, seed=args.seed,
                                 clients=client_counts)
    batch = run_jobs(jobs, workers=args.workers)
    rows = [(clients, result.completed, result.failed)
            for clients, result in zip(client_counts, batch.ordered)
            if result is not None]
    print(render_table(("clients", "completed", "errors"), rows))
    for name, error in batch.errors.items():
        print(f"FAILED {name}: {error}")
    return 1 if batch.errors else 0


def cmd_ablation(args) -> int:
    runners = {
        "gateways": ablate_gateway_count,
        "dynamic": ablate_dynamic_thresholds,
        "best-plan": ablate_best_plan,
    }
    ablation = runners[args.which](clients=args.clients,
                                   preset=args.preset, seed=args.seed,
                                   workers=args.workers)
    rows = [(label, r.completed, r.failed, r.degraded)
            for label, r in ablation.results.items()]
    print(render_table(("variant", "completed", "errors", "degraded"),
                       rows))
    return 0


def cmd_experiments(args) -> int:
    """Fan out a suite, print a summary, write BENCH artifacts."""
    from repro.experiments.ablations import ablation_suite_jobs
    from repro.experiments.engine import (
        figure_suite_jobs,
        run_jobs,
        saturation_suite_jobs,
        write_artifact,
    )

    suites = {}
    if args.suite in ("figures", "all"):
        suites["figures"] = figure_suite_jobs(preset=args.preset,
                                              seed=args.seed)
    if args.suite in ("ablations", "all"):
        suites["ablations"] = ablation_suite_jobs(preset=args.preset,
                                                  seed=args.seed)
    if args.suite in ("saturation", "all"):
        suites["saturation"] = saturation_suite_jobs(preset=args.preset,
                                                     seed=args.seed)

    failed = False
    for suite_name, jobs in suites.items():
        print(f"== suite {suite_name}: {len(jobs)} runs, "
              f"workers={args.workers}, preset={args.preset}")
        batch = run_jobs(jobs, workers=args.workers,
                         progress=lambda line: print(f"   {line}"))
        path = write_artifact(args.out, suite_name, batch)
        rows = [(name, r.completed, r.failed, r.degraded,
                 f"{r.wall_seconds:.1f}s")
                for name, r in batch.results.items()]
        print(render_table(
            ("run", "completed", "errors", "degraded", "wall"), rows))
        print(f"   wall {batch.wall_seconds:.1f}s -> {path}")
        if batch.errors:
            failed = True
            for name, error in batch.errors.items():
                print(f"   FAILED {name}: {error}")
    return 1 if failed else 0


def cmd_query(args) -> int:
    workload = make_workload(args.workload)
    server = DatabaseServer(
        paper_server_config(throttling=not args.no_throttle),
        workload.build_catalog())
    query = workload.generate(random.Random(args.seed))
    print(f"-- template: {query.template}")
    print(query.text)
    print()
    outcome = server.execute_sync(query.text)
    if not outcome.ok:
        print(f"FAILED: {outcome.error_kind}: {outcome.error_message}")
        return 1
    print(f"compile  {format_duration(outcome.compile_time)}  "
          f"peak {format_bytes(outcome.compile_peak_bytes)}"
          f"{'  [degraded]' if outcome.degraded_plan else ''}")
    print(f"execute  {format_duration(outcome.execution_time)}  "
          f"spilled={outcome.spilled}")
    return 0


def cmd_monitors(_args) -> int:
    print(figure1_monitors())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": cmd_figure,
        "sweep": cmd_sweep,
        "ablation": cmd_ablation,
        "experiments": cmd_experiments,
        "query": cmd_query,
        "monitors": cmd_monitors,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
