"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scenarios``    the declarative scenario API:
                 ``list`` / ``describe <id>`` / ``run <id>…``
``shards``       distribute a scenario selection across processes or
                 machines: ``plan`` / ``run --shard k/N`` / ``merge``
``workers``      stream cells to a worker pool over TCP:
                 ``serve`` a selection / ``join`` a coordinator
``figure``       reproduce one of the paper's figures (1, 2, 3, 4, 5)
``sweep``        client sweep (the CLAIM-SAT saturation experiment)
``ablation``     run one of the design ablations
``experiments``  fan a whole suite out across workers and write
                 ``BENCH_*.json`` artifacts
``results``      the cross-run results warehouse: ``load`` BENCH
                 artifact dirs / journals, then ``query`` / ``diff`` /
                 ``trend`` / ``radar`` across runs
``traces``       open-loop trace tooling: ``validate`` / ``summarize``
                 a CSV/JSONL query log, ``synth`` one from an arrival
                 process, ``capture`` a replayable admission trace
                 from a scenario run
``query``        compile + execute one ad-hoc query and print the report
``monitors``     print the memory-monitor ladder

``figure``/``sweep``/``ablation`` are shims over the scenario registry:
``repro figure 3`` and ``repro scenarios run fig3`` execute the same
spec through the same facade and print identical output.

Every run surface submits its cells through one
:class:`~repro.experiments.executors.CellExecutor`; ``--executor
{inline,pool,stream}`` picks the implementation (default: inline for
``--workers 1``, the process pool otherwise) and results are
canonically byte-identical whichever one runs the cells.  ``--journal
PATH`` makes the queue durable (kill the coordinator, restart with
``--resume``: completed cells replay from the journal) and ``--order
{spec,cost}`` picks the queue order — both are scheduling/durability
concerns only and never change artifact bytes.

See ``docs/cli.md`` for the full command reference,
``docs/sharding.md`` for the shard execution model,
``docs/executors.md`` for the executor protocol and wire format and
``docs/operations.md`` for the worker-pool/journal runbook.

Examples
--------
::

    python -m repro scenarios list
    python -m repro scenarios run fig3 mixed-rush --workers 4
    python -m repro scenarios run --scenario my_scenario.json
    python -m repro scenarios run abl-dyn --executor stream --stream-workers 2
    python -m repro shards run --shard 2/4 --all --out shard-artifacts
    python -m repro shards merge shard-artifacts --out bench-artifacts
    python -m repro workers serve --all --bind 127.0.0.1:7731 --out bench
    python -m repro workers serve --all --journal run.journal --order cost --out bench
    python -m repro workers serve --all --journal run.journal --resume --out bench
    python -m repro workers join --connect 127.0.0.1:7731
    python -m repro figure 3 --preset smoke
    python -m repro experiments --suite figures --workers 4 --out bench
    python -m repro results load bench --db results.sqlite
    python -m repro results diff prev latest --db results.sqlite
    python -m repro results radar prev latest --db results.sqlite
    python -m repro traces validate examples/sample_trace.jsonl
    python -m repro traces synth --out burst.jsonl --arrivals flash_crowd
    python -m repro traces capture fairness-noisy --out traces
    python -m repro scenarios run burst-flash --capture-trace traces
    python -m repro scenarios run burst-flash --clients 4
    python -m repro query --workload mixed --seed 7
    python -m repro ablation gateways --clients 30
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.config import paper_server_config
from repro.errors import ReproError
from repro.experiments.runner import PRESETS, make_workload
from repro.metrics.report import render_table
from repro.server.server import DatabaseServer
from repro.units import format_bytes, format_duration


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="smoke", choices=sorted(PRESETS),
                        help="fidelity/runtime preset")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for experiment fan-out")


def _add_selection_args(parser: argparse.ArgumentParser) -> None:
    """Scenario-selection arguments shared by ``scenarios run`` and the
    ``shards`` family — every shard invocation must resolve the exact
    same selection, so they take the exact same flags."""
    parser.add_argument("ids", nargs="*",
                        help="registered scenario ids to select")
    parser.add_argument("--all", action="store_true",
                        help="select every registered scenario")
    parser.add_argument("--family", default=None,
                        help="select every scenario of this family")
    parser.add_argument("--scenario", action="append", default=[],
                        metavar="FILE",
                        help="path to a user-authored JSON ScenarioSpec "
                             "(repeatable)")
    parser.add_argument("--preset", default=None, choices=sorted(PRESETS),
                        help="override each spec's preset")
    parser.add_argument("--seed", type=int, default=None,
                        help="override each spec's seed")
    parser.add_argument("--clients", type=int, default=None,
                        help="override each spec's client count")
    from repro.sim import KERNEL_NAMES
    parser.add_argument("--kernel", default=None, choices=KERNEL_NAMES,
                        help="override each spec's scheduler core "
                             "(results are identical; wall clock is not)")
    from repro.optimizer.spec import ENUMERATOR_NAMES
    parser.add_argument("--optimizer", default=None,
                        choices=ENUMERATOR_NAMES,
                        help="override each spec's optimizer join "
                             "enumerator (memo = staged search, ues = "
                             "greedy upper-bound ordering)")


def _add_executor_args(parser: argparse.ArgumentParser,
                       stream_workers: int = 2) -> None:
    """Cell-executor arguments shared by every run surface."""
    parser.add_argument("--executor", default=None,
                        choices=("inline", "pool", "stream"),
                        help="cell executor: inline (serial, default "
                             "for --workers 1), pool (process pool), "
                             "stream (TCP worker pool)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the pool executor")
    parser.add_argument("--stream-workers", type=int,
                        default=stream_workers, metavar="N",
                        help="local worker processes a stream executor "
                             "spawns itself (0 = external workers only)")
    parser.add_argument("--bind", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="address a stream executor serves on "
                             "(port 0 picks an ephemeral port)")
    parser.add_argument("--snapshot", action="store_true",
                        help="embed the end-of-run DMV snapshot "
                             "(ServerViews.snapshot) in result "
                             "artifacts")
    parser.add_argument("--capture-trace", default=None, metavar="DIR",
                        help="write each cell's replayable JSONL "
                             "admission trace (TRACE_*.jsonl) into "
                             "this directory")


def _add_queue_args(parser: argparse.ArgumentParser) -> None:
    """Queue durability and ordering, shared by every run surface."""
    parser.add_argument("--order", default="spec",
                        choices=("spec", "cost"),
                        help="queue order: spec (selection order) or "
                             "cost (expected-slowest cells first, from "
                             "prior journals/artifacts or workload-"
                             "size heuristics)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="record every dispatched/completed cell "
                             "to this append-only newline-JSON file; "
                             "a killed run restarts with --resume")
    parser.add_argument("--resume", action="store_true",
                        help="replay completed cells from --journal "
                             "and run only the outstanding ones")
    parser.add_argument("--warehouse", default=None, metavar="PATH",
                        help="results-warehouse sqlite file (see "
                             "`repro results`) whose observed per-cell "
                             "wall seconds feed --order cost")


def _executor_from_args(args):
    from repro.experiments.executors import StreamExecutor, make_executor

    executor = make_executor(args.executor, workers=args.workers,
                             bind=args.bind,
                             stream_workers=args.stream_workers)
    if isinstance(executor, StreamExecutor):
        # announce the bound address up front: with --stream-workers 0
        # the queue waits for external joiners, who need somewhere to
        # point `repro workers join --connect`
        host, port = executor.start()
        print(f"== stream executor on {host}:{port} "
              f"({executor.spawn_workers} local worker(s); join with: "
              f"repro workers join --connect {host}:{port})")
    return executor


def _wrap_journal(executor, args):
    """Wrap the surface's executor in a run journal when asked to.

    The wrapper owns the inner executor and the journal file; callers
    close the returned executor exactly as they would the bare one.
    """
    from repro.errors import ConfigurationError

    if args.journal is None:
        if args.resume:
            raise ConfigurationError(
                "--resume replays a journal; pass --journal PATH too")
        return executor
    from repro.experiments.journal import journaled_executor

    return journaled_executor(executor, args.journal, resume=args.resume)


def _scheduler_from_args(args, executor=None):
    """A cost scheduler fed from whatever history this machine has:
    the run's own journal (already parsed by the --resume wrapper, so
    its state is reused rather than re-read), any artifacts already
    in --out, and the --warehouse trajectory when given.  Only built
    when --order cost asks for one."""
    if args.order != "cost":
        return None
    from repro.experiments.scheduler import (
        CellScheduler,
        history_from_state,
    )

    out_dir = getattr(args, "out", None)
    warehouse = getattr(args, "warehouse", None)
    scheduler = CellScheduler.from_sources(
        artifact_dirs=[out_dir] if out_dir else [],
        warehouses=[warehouse] if warehouse else [])
    state = getattr(executor, "resume_state", None)
    if state is not None:
        scheduler.history.update(history_from_state(state))
    return scheduler


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CIDR'07 compilation-memory-throttling reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    scen = sub.add_parser(
        "scenarios",
        help="declarative scenario API (list / describe / run)")
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)

    s_list = scen_sub.add_parser("list", help="list registered scenarios")
    s_list.add_argument("--family", default=None,
                        help="only scenarios of this family")

    s_desc = scen_sub.add_parser(
        "describe",
        help="print one scenario's JSON spec (registered id or file)")
    s_desc.add_argument("id", nargs="?", default=None,
                        help="registered scenario id")
    s_desc.add_argument("--scenario", default=None, metavar="FILE",
                        help="validate and print a user-authored JSON "
                             "ScenarioSpec file instead of a "
                             "registered id")

    s_run = scen_sub.add_parser(
        "run", help="run scenarios by id, family or JSON spec file")
    _add_selection_args(s_run)
    _add_executor_args(s_run)
    _add_queue_args(s_run)
    s_run.add_argument("--out", default=None,
                       help="directory for BENCH_scenario_*.json artifacts")

    shards = sub.add_parser(
        "shards",
        help="sharded scenario execution (plan / run --shard k/N / merge)")
    shards_sub = shards.add_subparsers(dest="shards_command", required=True)

    sh_plan = shards_sub.add_parser(
        "plan", help="show how a selection partitions into shards")
    _add_selection_args(sh_plan)
    sh_plan.add_argument("--shards", type=int, default=4, metavar="N",
                         help="number of shards to partition into")

    sh_run = shards_sub.add_parser(
        "run", help="execute one shard of a selection and write its "
                    "BENCH_shard_*.json artifact")
    _add_selection_args(sh_run)
    sh_run.add_argument("--shard", required=True, metavar="K/N",
                        help="which shard this process executes "
                             "(1-based), e.g. 2/4")
    _add_executor_args(sh_run)
    _add_queue_args(sh_run)
    sh_run.add_argument("--out", default="shard-artifacts",
                        help="directory for the BENCH_shard_*.json "
                             "artifact")

    sh_merge = shards_sub.add_parser(
        "merge", help="merge shard artifacts (and/or pre-shard scenario "
                      "artifacts) into BENCH_scenario_*.json")
    sh_merge.add_argument("artifacts", nargs="+", metavar="PATH",
                          help="BENCH_*.json files, or directories to "
                               "scan for BENCH_shard_*.json")
    sh_merge.add_argument("--out", default="bench-artifacts",
                          help="directory for the merged artifacts")

    workers = sub.add_parser(
        "workers",
        help="stream cells to a TCP worker pool (serve / join)")
    workers_sub = workers.add_subparsers(dest="workers_command",
                                         required=True)

    w_serve = workers_sub.add_parser(
        "serve", help="serve a selection's cell queue to joining "
                      "workers and write BENCH_scenario_*.json")
    _add_selection_args(w_serve)
    w_serve.add_argument("--bind", default="127.0.0.1:7731",
                         metavar="HOST:PORT",
                         help="address to serve the cell queue on")
    w_serve.add_argument("--stream-workers", type=int, default=0,
                         metavar="N",
                         help="local worker processes to spawn in "
                              "addition to external joiners")
    w_serve.add_argument("--snapshot", action="store_true",
                         help="embed the end-of-run DMV snapshot in "
                              "result artifacts")
    w_serve.add_argument("--capture-trace", default=None, metavar="DIR",
                         help="write each cell's replayable JSONL "
                              "admission trace into this directory")
    _add_queue_args(w_serve)
    w_serve.add_argument("--out", default=None,
                         help="directory for BENCH_scenario_*.json "
                              "artifacts")

    w_join = workers_sub.add_parser(
        "join", help="join a coordinator and execute streamed cells "
                     "until the queue drains")
    w_join.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address (from `repro workers "
                             "serve`)")
    w_join.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress output")

    fig = sub.add_parser("figure", help="reproduce a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    _add_common(fig)

    sweep = sub.add_parser("sweep", help="client-count saturation sweep")
    sweep.add_argument("--clients", type=int, nargs="+",
                       default=[5, 15, 30, 40])
    _add_common(sweep)

    abl = sub.add_parser("ablation", help="run a design ablation")
    abl.add_argument("which", choices=("gateways", "dynamic", "best-plan"))
    abl.add_argument("--clients", type=int, default=None)
    _add_common(abl)

    exp = sub.add_parser(
        "experiments",
        help="run a whole suite through the parallel engine and write "
             "BENCH_*.json artifacts")
    exp.add_argument("--suite", default="figures",
                     choices=("figures", "ablations", "saturation", "all"))
    exp.add_argument("--out", default="bench-artifacts",
                     help="directory for BENCH_*.json artifacts")
    exp.add_argument("--snapshot", action="store_true",
                     help="embed the end-of-run DMV snapshot in each "
                          "run's artifact summary")
    _add_common(exp)

    from repro.results.radar import DEFAULT_REGRESSION_THRESHOLD

    res = sub.add_parser(
        "results",
        help="cross-run results warehouse (load / query / diff / "
             "trend / radar)")
    res_sub = res.add_subparsers(dest="results_command", required=True)

    def _add_db(sub_parser) -> None:
        sub_parser.add_argument(
            "--db", default="results.sqlite", metavar="PATH",
            help="warehouse sqlite file")

    r_load = res_sub.add_parser(
        "load", help="ingest BENCH_*.json artifact dirs and/or run "
                     "journals as warehouse runs (idempotent)")
    r_load.add_argument("sources", nargs="+", metavar="PATH",
                        help="artifact directory or journal file")
    _add_db(r_load)
    r_load.add_argument("--label", default=None,
                        help="run label for later reference (default: "
                             "the source path; needs a single source)")
    r_load.add_argument("--git-sha", default=None, metavar="SHA",
                        help="code identity of the run (default: git "
                             "rev-parse HEAD, or 'unknown')")
    r_load.add_argument("--host", default=None,
                        help="host the run executed on (default: this "
                             "machine's hostname)")

    r_query = res_sub.add_parser(
        "query", help="per-scenario / per-variant metric facts "
                      "across runs")
    _add_db(r_query)
    r_query.add_argument("--run", default=None,
                         help="restrict to one run (id, label, "
                              "fingerprint prefix, latest, prev)")
    r_query.add_argument("--scenario", default=None,
                         help="restrict to one scenario id")
    r_query.add_argument("--variant", default=None,
                         help="restrict to one variant name")
    r_query.add_argument("--metric", default=None,
                         help="restrict to one metric name")

    r_diff = res_sub.add_parser(
        "diff", help="cell-by-cell metric deltas between two runs "
                     "(volatile fields excluded; exit 1 on any "
                     "non-volatile delta)")
    r_diff.add_argument("runs", nargs=2, metavar="RUN",
                        help="baseline and candidate run refs")
    _add_db(r_diff)
    r_diff.add_argument("--include-volatile", action="store_true",
                        help="also list wall-clock/cache-locality "
                             "deltas (informational, never failing)")

    r_trend = res_sub.add_parser(
        "trend", help="wall_seconds_percentiles series per scenario "
                      "across all loaded runs")
    _add_db(r_trend)
    r_trend.add_argument("--scenario", default=None,
                         help="restrict the series to one scenario id")

    r_radar = res_sub.add_parser(
        "radar", help="fail (exit 1) when p50/p90 wall-seconds of any "
                      "pinned scenario regress beyond the threshold")
    r_radar.add_argument("runs", nargs=2, metavar="RUN",
                         help="baseline and candidate run refs "
                              "(e.g. prev latest)")
    _add_db(r_radar)
    r_radar.add_argument(
        "--threshold", type=float, default=None, metavar="FRACTION",
        help=f"regression tolerance as a fraction of the baseline "
             f"(default {DEFAULT_REGRESSION_THRESHOLD:g}, from "
             f"repro.results.radar)")
    r_radar.add_argument(
        "--min-seconds", type=float, default=None, metavar="SECONDS",
        help="skip percentiles where both runs are under this floor "
             "(near-free cells measure scheduler noise)")
    r_radar.add_argument(
        "--pin", action="append", default=[], metavar="SCENARIO",
        help="pinned scenario that must exist in both runs "
             "(repeatable; default: every scenario the runs share)")

    from repro.traffic.arrivals import ARRIVAL_FACTORIES

    traces = sub.add_parser(
        "traces",
        help="open-loop trace tooling (validate / summarize / synth)")
    traces_sub = traces.add_subparsers(dest="traces_command",
                                       required=True)

    def _add_tail(sub_parser) -> None:
        sub_parser.add_argument(
            "--tolerate-tail", action="store_true",
            help="skip a truncated trailing line (torn tails only; a "
                 "malformed line mid-file always fails)")

    t_validate = traces_sub.add_parser(
        "validate", help="stream-parse a trace, failing on the first "
                         "malformed line (exit 2)")
    t_validate.add_argument("trace", metavar="FILE",
                            help="a .jsonl/.ndjson/.csv query log")
    _add_tail(t_validate)

    t_summarize = traces_sub.add_parser(
        "summarize", help="one streaming pass: event count, time span, "
                          "mean rate, tenants and templates")
    t_summarize.add_argument("trace", metavar="FILE",
                             help="a .jsonl/.ndjson/.csv query log")
    _add_tail(t_summarize)

    t_capture = traces_sub.add_parser(
        "capture", help="run a registered scenario and write each "
                        "cell's replayable JSONL admission trace")
    t_capture.add_argument("id", help="registered scenario id")
    t_capture.add_argument("--out", default="traces", metavar="DIR",
                           help="directory for the TRACE_*.jsonl files")
    t_capture.add_argument("--preset", default=None,
                           choices=sorted(PRESETS),
                           help="override the scenario's preset")
    t_capture.add_argument("--seed", type=int, default=None,
                           help="override the scenario's seed")
    t_capture.add_argument("--clients", type=int, default=None,
                           help="override the scenario's client count")

    t_synth = traces_sub.add_parser(
        "synth", help="synthesize a JSONL trace from a seeded arrival "
                      "process")
    t_synth.add_argument("--out", required=True, metavar="FILE",
                         help="JSONL file to write")
    t_synth.add_argument("--arrivals", default="poisson",
                         choices=sorted(ARRIVAL_FACTORIES),
                         help="arrival process to sample")
    t_synth.add_argument("--param", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="arrival-process parameter (repeatable; "
                              "values parse as JSON, falling back to "
                              "strings)")
    t_synth.add_argument("--duration", type=float, default=3000.0,
                         help="schedule horizon in paper seconds")
    t_synth.add_argument("--seed", type=int, default=3)
    t_synth.add_argument("--workload", default=None,
                         help="stamp events with this workload's "
                              "template names (sales, tpch, oltp, "
                              "mixed)")
    t_synth.add_argument("--tenant", default="default",
                         help="tenant label for single-tenant "
                              "processes")

    query = sub.add_parser("query", help="run one ad-hoc query")
    query.add_argument("--workload", default="sales",
                       help="workload name (sales, tpch, oltp, mixed)")
    query.add_argument("--no-throttle", action="store_true")
    query.add_argument("--seed", type=int, default=7)

    sub.add_parser("monitors", help="print the monitor ladder")
    return parser


# ----------------------------------------------------------- scenarios
def _run_specs(specs, workers: int = 1, out: Optional[str] = None,
               executor=None, snapshot: bool = False,
               capture: Optional[str] = None,
               order: str = "spec", scheduler=None) -> int:
    """Run resolved specs; print each render; write artifacts.

    One executor, one submission: all specs' cells go down together
    (see :func:`repro.scenarios.facade.run_scenarios`), so a stream
    executor's workers drain a single queue across the selection —
    but each scenario renders and persists as soon as it completes,
    so a long run keeps its finished artifacts even if a later
    scenario fails.
    """
    from repro.scenarios import run_scenarios, write_scenario_artifact

    state = {"failed": False, "emitted": 0}

    def emit(result) -> None:
        if state["emitted"]:
            print()
        state["emitted"] += 1
        print(result.render())
        if out:
            path = write_scenario_artifact(out, result)
            print(f"   artifact -> {path}")
        if not result.ok:
            state["failed"] = True

    run_scenarios(specs, workers=workers, executor=executor,
                  snapshot=snapshot, capture=capture, on_result=emit,
                  order=order, scheduler=scheduler)
    return 1 if state["failed"] else 0


def _resolve_run_specs(args) -> list:
    from repro.errors import ConfigurationError
    from repro.scenarios import get_scenario, list_scenarios, \
        load_scenario_file

    specs = []
    if args.all:
        specs.extend(list_scenarios())
    elif args.family:
        family_specs = list_scenarios(family=args.family)
        if not family_specs:
            from repro.scenarios import scenario_families

            raise ConfigurationError(
                f"no scenarios in family {args.family!r}; families: "
                f"{', '.join(scenario_families())}")
        specs.extend(family_specs)
    specs.extend(get_scenario(scenario_id) for scenario_id in args.ids)
    specs.extend(load_scenario_file(path) for path in args.scenario)
    if not specs:
        raise ConfigurationError(
            "nothing to run: give scenario ids, --family, --all or "
            "--scenario FILE")
    # overlapping selection flags (`--family ablations abl-dyn`) name
    # the same scenario twice; run it once.  Two *different* specs
    # under one id (a --scenario FILE shadowing a registered id) are a
    # conflict, never a silent last-wins
    unique = {}
    for spec in specs:
        known = unique.get(spec.scenario_id)
        if known is not None and known != spec:
            raise ConfigurationError(
                f"scenario {spec.scenario_id!r} is selected twice with "
                f"different specs; rename the --scenario file's "
                f"scenario_id or drop one selection")
        unique[spec.scenario_id] = spec
    # the kernel and optimizer knobs only exist on experiment
    # scenarios; a selection mixing in monitors/trace scenarios keeps
    # those on their default
    kernel = getattr(args, "kernel", None)
    optimizer = getattr(args, "optimizer", None)
    return [spec.customized(preset=args.preset, seed=args.seed,
                            clients=args.clients,
                            kernel=(kernel if spec.kind == "experiment"
                                    else None),
                            optimizer=(optimizer
                                       if spec.kind == "experiment"
                                       else None))
            for spec in unique.values()]


def cmd_scenarios(args) -> int:
    from repro.errors import ConfigurationError
    from repro.scenarios import get_scenario, list_scenarios, \
        load_scenario_file

    if args.scenarios_command == "list":
        specs = list_scenarios(family=args.family)
        rows = [(spec.scenario_id, spec.family, spec.kind, spec.workload,
                 spec.clients, len(spec.variants), spec.title)
                for spec in specs]
        print(render_table(
            ("id", "family", "kind", "workload", "clients", "variants",
             "title"), rows))
        print(f"{len(specs)} scenarios")
        return 0
    if args.scenarios_command == "describe":
        if (args.id is None) == (args.scenario is None):
            raise ConfigurationError(
                "describe needs a registered scenario id or "
                "--scenario FILE (exactly one)")
        # loading a file validates it: unknown top-level keys are a
        # ConfigurationError listing the valid ones, same as `run`
        spec = (load_scenario_file(args.scenario) if args.scenario
                else get_scenario(args.id))
        print(json.dumps(spec.to_dict(), indent=2))
        return 0
    specs = _resolve_run_specs(args)
    executor = _wrap_journal(_executor_from_args(args), args)
    try:
        return _run_specs(specs, out=args.out, executor=executor,
                          snapshot=args.snapshot,
                          capture=args.capture_trace, order=args.order,
                          scheduler=_scheduler_from_args(args, executor))
    finally:
        executor.close()


# ------------------------------------------------------------- sharding
def _collect_merge_paths(arguments: List[str]) -> List[str]:
    """Expand merge arguments: files stay, directories are scanned for
    ``BENCH_shard_*.json`` (sorted, so runs are deterministic)."""
    import glob
    import os

    from repro.errors import ConfigurationError

    paths = []
    for argument in arguments:
        if os.path.isdir(argument):
            found = sorted(glob.glob(
                os.path.join(argument, "BENCH_shard_*of*.json")))
            if not found:
                raise ConfigurationError(
                    f"no BENCH_shard_*.json artifacts in directory "
                    f"{argument!r}")
            paths.extend(found)
        else:
            paths.append(argument)
    return paths


def cmd_shards(args) -> int:
    """Handle the ``shards`` family (plan / run / merge)."""
    from repro.experiments.shards import (
        ShardPlan,
        merge_artifact_files,
        parse_shard_selector,
        run_shard,
        write_merged_artifacts,
        write_shard_artifact,
    )

    if args.shards_command == "merge":
        paths = _collect_merge_paths(args.artifacts)
        merge = merge_artifact_files(paths)
        rows = [(scenario_id, "ok" if payload["ok"] else "FAILED")
                for scenario_id, payload in merge.scenarios.items()]
        print(f"== merged {merge.sources} artifacts "
              f"({merge.shard_count} shards, {merge.cells_total} cells)")
        print(render_table(("scenario", "status"), rows))
        for path in write_merged_artifacts(args.out, merge):
            print(f"   artifact -> {path}")
        return 0 if merge.ok else 1

    specs = _resolve_run_specs(args)
    if args.shards_command == "plan":
        plan = ShardPlan.partition(specs, args.shards)
        rows = [(f"{index}/{plan.count}", len(cells),
                 " ".join(f"{c.scenario_id}/{c.variant}" for c in cells))
                for index, cells in enumerate(plan.assignments, start=1)]
        print(render_table(("shard", "cells", "assignment"), rows))
        print(f"{len(plan.all_cells())} cells over {plan.count} shards")
        return 0

    index, count = parse_shard_selector(args.shard)
    plan = ShardPlan.partition(specs, count)
    print(f"== shard {index}/{count}: {len(plan.cells_for(index))} of "
          f"{len(plan.all_cells())} cells, workers={args.workers}")
    executor = _wrap_journal(_executor_from_args(args), args)
    try:
        payload = run_shard(plan, index, executor=executor,
                            snapshot=args.snapshot,
                            capture=args.capture_trace, order=args.order,
                            scheduler=_scheduler_from_args(args, executor),
                            progress=lambda line: print(f"   {line}"))
    finally:
        executor.close()
    path = write_shard_artifact(args.out, payload)
    print(f"   artifact -> {path}")
    failed = False
    for scenario_id, entry in payload["scenarios"].items():
        for variant, error in entry.get("errors", {}).items():
            failed = True
            print(f"   FAILED {scenario_id}/{variant}: {error}")
    return 1 if failed else 0


# ------------------------------------------------------- worker pools
def cmd_workers(args) -> int:
    """Handle the ``workers`` family (serve / join)."""
    from repro.experiments.wire import parse_address, run_worker

    if args.workers_command == "join":
        host, port = parse_address(args.connect)
        progress = None if args.quiet else \
            (lambda line: print(f"   {line}"))
        executed = run_worker(host, port, progress=progress)
        print(f"worker drained after {executed} cell(s)")
        return 0

    from repro.experiments.executors import StreamExecutor

    specs = _resolve_run_specs(args)
    host, port = parse_address(args.bind)
    stream = StreamExecutor(host=host, port=port,
                            spawn_workers=args.stream_workers)
    executor = _wrap_journal(stream, args)
    try:
        bound_host, bound_port = stream.start()
        cells = sum(len(spec.variant_names()) for spec in specs)
        print(f"== serving {cells} cells on {bound_host}:{bound_port} "
              f"(join with: repro workers join "
              f"--connect {bound_host}:{bound_port})")
        return _run_specs(specs, out=args.out, executor=executor,
                          snapshot=args.snapshot,
                          capture=args.capture_trace, order=args.order,
                          scheduler=_scheduler_from_args(args, executor))
    finally:
        executor.close()


# -------------------------------------------------------- legacy shims
def cmd_figure(args) -> int:
    from repro.scenarios import get_scenario

    spec = get_scenario(f"fig{args.number}")
    if args.number in (1, 2):
        # fig1 renders a configuration; fig2 traces compilations —
        # neither takes a preset, but the seed still applies to fig2
        spec = spec.customized(seed=args.seed)
    else:
        spec = spec.customized(preset=args.preset, seed=args.seed)
    return _run_specs([spec], workers=args.workers, out=None)


def cmd_sweep(args) -> int:
    from repro.scenarios import saturation_scenario

    # duplicate counts would be identical runs (same config, same
    # seed) and would collide as variant names; keep first occurrences
    spec = saturation_scenario(tuple(dict.fromkeys(args.clients)),
                               preset=args.preset, seed=args.seed)
    return _run_specs([spec], workers=args.workers, out=None)


def cmd_ablation(args) -> int:
    from repro.scenarios import get_scenario

    scenario_ids = {
        "gateways": "abl-gates",
        "dynamic": "abl-dyn",
        "best-plan": "abl-bpsf",
    }
    spec = get_scenario(scenario_ids[args.which]).customized(
        preset=args.preset, seed=args.seed, clients=args.clients)
    return _run_specs([spec], workers=args.workers, out=None)


# ------------------------------------------------------- engine suites
def cmd_experiments(args) -> int:
    """Fan out a suite, print a summary, write BENCH artifacts."""
    from repro.experiments.ablations import ablation_suite_jobs
    from repro.experiments.engine import (
        ExperimentJob,
        figure_suite_jobs,
        run_jobs,
        saturation_suite_jobs,
        write_artifact,
    )

    suites = {}
    if args.suite in ("figures", "all"):
        suites["figures"] = figure_suite_jobs(preset=args.preset,
                                              seed=args.seed)
    if args.suite in ("ablations", "all"):
        suites["ablations"] = ablation_suite_jobs(preset=args.preset,
                                                  seed=args.seed)
    if args.suite in ("saturation", "all"):
        suites["saturation"] = saturation_suite_jobs(preset=args.preset,
                                                     seed=args.seed)
    if args.snapshot:
        from dataclasses import replace

        suites = {name: [ExperimentJob(job.name,
                                       replace(job.config,
                                               capture_snapshot=True))
                         for job in jobs]
                  for name, jobs in suites.items()}

    failed = False
    for suite_name, jobs in suites.items():
        print(f"== suite {suite_name}: {len(jobs)} runs, "
              f"workers={args.workers}, preset={args.preset}")
        batch = run_jobs(jobs, workers=args.workers,
                         progress=lambda line: print(f"   {line}"))
        path = write_artifact(args.out, suite_name, batch)
        rows = [(name, r.completed, r.failed, r.degraded,
                 f"{r.wall_seconds:.1f}s")
                for name, r in batch.results.items()]
        print(render_table(
            ("run", "completed", "errors", "degraded", "wall"), rows))
        print(f"   wall {batch.wall_seconds:.1f}s -> {path}")
        if batch.errors:
            failed = True
            for name, error in batch.errors.items():
                print(f"   FAILED {name}: {error}")
    return 1 if failed else 0


# ------------------------------------------------------ results warehouse
def _format_value(value) -> str:
    return "-" if value is None else f"{value:g}"


def cmd_results(args) -> int:
    """Handle the ``results`` family (load / query / diff / trend /
    radar) — a thin shell over :mod:`repro.results`."""
    from repro.errors import ConfigurationError
    from repro.results import radar as radar_module
    from repro.results.warehouse import Warehouse

    if args.results_command == "load":
        if args.label is not None and len(args.sources) > 1:
            raise ConfigurationError(
                "--label names one run; load labelled sources one at "
                "a time")
        with Warehouse(args.db, create=True) as warehouse:
            for source in args.sources:
                report = warehouse.load(source, label=args.label,
                                        git_sha=args.git_sha,
                                        host=args.host)
                verb = "loaded" if report.created else "already loaded"
                print(f"== {verb} run {report.run.run_id} "
                      f"({report.run.label}): {report.run.cells} "
                      f"cell(s), {report.metrics} metric fact(s) "
                      f"[{report.run.fingerprint[:12]}]")
                for note in report.skipped:
                    print(f"   skipped {note}")
        return 0

    with Warehouse(args.db) as warehouse:
        if args.results_command == "query":
            rows = warehouse.query(run=args.run, scenario=args.scenario,
                                   variant=args.variant,
                                   metric=args.metric)
            print(render_table(
                ("run", "scenario", "variant", "seed", "metric",
                 "value", "volatile"),
                [(run_id, scenario, variant, seed, metric,
                  _format_value(value), "yes" if volatile else "")
                 for run_id, scenario, variant, seed, metric, value,
                 volatile in rows]))
            print(f"{len(rows)} fact(s)")
            return 0

        if args.results_command == "diff":
            report = warehouse.diff(*args.runs)
            print(f"== diff {report.baseline.describe()} -> "
                  f"{report.candidate.describe()}: "
                  f"{report.shared_cells} shared cell(s)")
            shown = report.pinned_deltas + (
                report.volatile_deltas if args.include_volatile else [])
            if shown:
                print(render_table(
                    ("cell", "metric", "baseline", "candidate",
                     "volatile"),
                    [(delta.cell, delta.metric,
                      _format_value(delta.baseline),
                      _format_value(delta.candidate),
                      "yes" if delta.volatile else "")
                     for delta in shown]))
            for note in report.missing:
                print(f"   MISSING {note}")
            print(f"{len(report.pinned_deltas)} non-volatile delta(s), "
                  f"{len(report.volatile_deltas)} volatile"
                  + ("" if args.include_volatile
                     else " (show with --include-volatile)"))
            return 0 if report.ok else 1

        if args.results_command == "trend":
            series = warehouse.trend(scenario=args.scenario)
            rows = [(scenario_id, run.run_id, run.label,
                     digest["cells"], _format_value(digest["p50"]),
                     _format_value(digest["p90"]),
                     _format_value(digest["max"]))
                    for scenario_id, points in series.items()
                    for run, digest in points]
            print(render_table(
                ("scenario", "run", "label", "cells", "p50", "p90",
                 "max"), rows))
            print(f"{len(series)} scenario(s) over "
                  f"{len(warehouse.runs())} run(s)")
            return 0

        # radar: the CI lane runs `radar prev latest` on every build —
        # the very first build has nothing to compare, and that is a
        # seeded baseline, not a failure
        if "prev" in args.runs and len(warehouse.runs()) < 2:
            print("== regression radar: baseline seeded (one run in "
                  "the warehouse); nothing to compare yet")
            return 0
        report = radar_module.scan(
            warehouse, args.runs[0], args.runs[1],
            threshold=args.threshold, min_seconds=args.min_seconds,
            scenarios=args.pin or None)
        print(f"== regression radar: {report.baseline.describe()} -> "
              f"{report.candidate.describe()}, threshold "
              f"{report.threshold * 100:g}%")
        for label, why in sorted(report.skipped.items()):
            print(f"   skipped {label}: {why}")
        print(f"   compared {len(report.compared)} scenario "
              f"percentile(s)")
        for finding in report.findings:
            print(f"   REGRESSION {finding.describe()}")
        if report.ok:
            print("   ok: no regressions beyond the threshold")
        return 0 if report.ok else 1


# ----------------------------------------------------------- traces
def _parse_synth_params(pairs: List[str]) -> dict:
    """``KEY=VALUE`` pairs with JSON-parsed values (string fallback)."""
    from repro.errors import ConfigurationError

    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(
                f"--param takes KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def cmd_traces(args) -> int:
    """Handle the ``traces`` family (validate / summarize / synth)."""
    from repro.traffic.arrivals import make_arrival_process
    from repro.traffic.trace import (
        read_trace,
        summarize_trace,
        synthesize_trace,
    )

    if args.traces_command == "validate":
        events = 0
        for _ in read_trace(args.trace,
                            tolerate_tail=args.tolerate_tail):
            events += 1
        print(f"== trace {args.trace}: valid ({events} event(s))")
        return 0

    if args.traces_command == "summarize":
        summary = summarize_trace(args.trace,
                                  tolerate_tail=args.tolerate_tail)
        print(f"== trace {args.trace}")
        print(f"   events       {summary['events']}")
        span = summary["span_seconds"]
        first, last = summary["t_first"], summary["t_last"]
        if summary["events"]:
            print(f"   span         {span:g}s "
                  f"(t={first:g} .. t={last:g})")
        rate = summary["mean_rate"]
        print(f"   mean rate    "
              f"{'-' if rate is None else f'{rate:g}/s'}")
        rows = [(tenant, count) for tenant, count
                in summary["tenants"].items()]
        if rows:
            print(render_table(("tenant", "events"), rows))
        rows = [(template, count) for template, count
                in summary["templates"].items()]
        if rows:
            print(render_table(("template", "events"), rows))
        rows = [(tenant, counts["offered"], counts["admitted"],
                 counts["dropped"])
                for tenant, counts in summary["tenant_outcomes"].items()]
        if rows:
            # captured traces carry admission outcomes; synthetic and
            # external query logs usually do not, so the table only
            # appears when there is something to break down
            print(render_table(
                ("tenant", "offered", "admitted", "dropped"), rows))
        return 0

    if args.traces_command == "capture":
        import os

        from repro.experiments.executors import tasks_for_specs
        from repro.scenarios import get_scenario, run_scenario

        spec = get_scenario(args.id).customized(
            preset=args.preset, seed=args.seed, clients=args.clients)
        result = run_scenario(spec, capture=args.out)
        print(result.render())
        written = [task.trace_path()
                   for task in tasks_for_specs([spec], capture=args.out)
                   if os.path.exists(task.trace_path())]
        for path in written:
            print(f"   trace -> {path}")
        if not written:
            print("   (no traces written: the scenario has no "
                  "experiment cells)")
        return 0 if result.ok else 1

    # synth
    process = make_arrival_process(args.arrivals,
                                   **_parse_synth_params(args.param))
    workload = make_workload(args.workload) if args.workload else None
    count = synthesize_trace(args.out, process, duration=args.duration,
                             seed=args.seed, workload=workload,
                             tenant=args.tenant)
    print(f"== wrote {count} event(s) over {args.duration:g}s to "
          f"{args.out} ({args.arrivals}, seed {args.seed})")
    return 0


# ------------------------------------------------------------ one-offs
def cmd_query(args) -> int:
    workload = make_workload(args.workload)
    server = DatabaseServer(
        paper_server_config(throttling=not args.no_throttle),
        workload.build_catalog())
    query = workload.generate(random.Random(args.seed))
    print(f"-- template: {query.template}")
    print(query.text)
    print()
    outcome = server.execute_sync(query.text)
    if not outcome.ok:
        print(f"FAILED: {outcome.error_kind}: {outcome.error_message}")
        return 1
    print(f"compile  {format_duration(outcome.compile_time)}  "
          f"peak {format_bytes(outcome.compile_peak_bytes)}"
          f"{'  [degraded]' if outcome.degraded_plan else ''}")
    print(f"execute  {format_duration(outcome.execution_time)}  "
          f"spilled={outcome.spilled}")
    return 0


def cmd_monitors(_args) -> int:
    from repro.experiments import figure1_monitors

    print(figure1_monitors())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "scenarios": cmd_scenarios,
        "shards": cmd_shards,
        "workers": cmd_workers,
        "figure": cmd_figure,
        "sweep": cmd_sweep,
        "ablation": cmd_ablation,
        "experiments": cmd_experiments,
        "results": cmd_results,
        "traces": cmd_traces,
        "query": cmd_query,
        "monitors": cmd_monitors,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
