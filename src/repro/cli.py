"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scenarios``    the declarative scenario API:
                 ``list`` / ``describe <id>`` / ``run <id>…``
``figure``       reproduce one of the paper's figures (1, 2, 3, 4, 5)
``sweep``        client sweep (the CLAIM-SAT saturation experiment)
``ablation``     run one of the design ablations
``experiments``  fan a whole suite out across workers and write
                 ``BENCH_*.json`` artifacts
``query``        compile + execute one ad-hoc query and print the report
``monitors``     print the memory-monitor ladder

``figure``/``sweep``/``ablation`` are shims over the scenario registry:
``repro figure 3`` and ``repro scenarios run fig3`` execute the same
spec through the same facade and print identical output.

Examples
--------
::

    python -m repro scenarios list
    python -m repro scenarios run fig3 mixed-rush --workers 4
    python -m repro scenarios run --scenario my_scenario.json
    python -m repro figure 3 --preset smoke
    python -m repro experiments --suite figures --workers 4 --out bench
    python -m repro query --workload mixed --seed 7
    python -m repro ablation gateways --clients 30
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional

from repro.config import paper_server_config
from repro.errors import ReproError
from repro.experiments.runner import PRESETS, make_workload
from repro.metrics.report import render_table
from repro.server.server import DatabaseServer
from repro.units import format_bytes, format_duration


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="smoke", choices=sorted(PRESETS),
                        help="fidelity/runtime preset")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for experiment fan-out")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CIDR'07 compilation-memory-throttling reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    scen = sub.add_parser(
        "scenarios",
        help="declarative scenario API (list / describe / run)")
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)

    s_list = scen_sub.add_parser("list", help="list registered scenarios")
    s_list.add_argument("--family", default=None,
                        help="only scenarios of this family")

    s_desc = scen_sub.add_parser(
        "describe", help="print one scenario's JSON spec")
    s_desc.add_argument("id")

    s_run = scen_sub.add_parser(
        "run", help="run scenarios by id, family or JSON spec file")
    s_run.add_argument("ids", nargs="*",
                       help="registered scenario ids to run")
    s_run.add_argument("--all", action="store_true",
                       help="run every registered scenario")
    s_run.add_argument("--family", default=None,
                       help="run every scenario of this family")
    s_run.add_argument("--scenario", action="append", default=[],
                       metavar="FILE",
                       help="path to a user-authored JSON ScenarioSpec "
                            "(repeatable)")
    s_run.add_argument("--preset", default=None, choices=sorted(PRESETS),
                       help="override each spec's preset")
    s_run.add_argument("--seed", type=int, default=None,
                       help="override each spec's seed")
    s_run.add_argument("--clients", type=int, default=None,
                       help="override each spec's client count")
    s_run.add_argument("--workers", type=int, default=1,
                       help="worker processes for experiment fan-out")
    s_run.add_argument("--out", default=None,
                       help="directory for BENCH_scenario_*.json artifacts")

    fig = sub.add_parser("figure", help="reproduce a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    _add_common(fig)

    sweep = sub.add_parser("sweep", help="client-count saturation sweep")
    sweep.add_argument("--clients", type=int, nargs="+",
                       default=[5, 15, 30, 40])
    _add_common(sweep)

    abl = sub.add_parser("ablation", help="run a design ablation")
    abl.add_argument("which", choices=("gateways", "dynamic", "best-plan"))
    abl.add_argument("--clients", type=int, default=None)
    _add_common(abl)

    exp = sub.add_parser(
        "experiments",
        help="run a whole suite through the parallel engine and write "
             "BENCH_*.json artifacts")
    exp.add_argument("--suite", default="figures",
                     choices=("figures", "ablations", "saturation", "all"))
    exp.add_argument("--out", default="bench-artifacts",
                     help="directory for BENCH_*.json artifacts")
    _add_common(exp)

    query = sub.add_parser("query", help="run one ad-hoc query")
    query.add_argument("--workload", default="sales",
                       help="workload name (sales, tpch, oltp, mixed)")
    query.add_argument("--no-throttle", action="store_true")
    query.add_argument("--seed", type=int, default=7)

    sub.add_parser("monitors", help="print the monitor ladder")
    return parser


# ----------------------------------------------------------- scenarios
def _run_specs(specs, workers: int, out: Optional[str]) -> int:
    """Run resolved specs; print each render; write artifacts."""
    from repro.scenarios import run_scenario, write_scenario_artifact

    failed = False
    for index, spec in enumerate(specs):
        if index:
            print()
        result = run_scenario(spec, workers=workers)
        print(result.render())
        if out:
            path = write_scenario_artifact(out, result)
            print(f"   artifact -> {path}")
        if not result.ok:
            failed = True
    return 1 if failed else 0


def _resolve_run_specs(args) -> list:
    from repro.errors import ConfigurationError
    from repro.scenarios import get_scenario, list_scenarios, \
        load_scenario_file

    specs = []
    if args.all:
        specs.extend(list_scenarios())
    elif args.family:
        family_specs = list_scenarios(family=args.family)
        if not family_specs:
            from repro.scenarios import scenario_families

            raise ConfigurationError(
                f"no scenarios in family {args.family!r}; families: "
                f"{', '.join(scenario_families())}")
        specs.extend(family_specs)
    specs.extend(get_scenario(scenario_id) for scenario_id in args.ids)
    specs.extend(load_scenario_file(path) for path in args.scenario)
    if not specs:
        raise ConfigurationError(
            "nothing to run: give scenario ids, --family, --all or "
            "--scenario FILE")
    return [spec.customized(preset=args.preset, seed=args.seed,
                            clients=args.clients) for spec in specs]


def cmd_scenarios(args) -> int:
    from repro.scenarios import get_scenario, list_scenarios

    if args.scenarios_command == "list":
        specs = list_scenarios(family=args.family)
        rows = [(spec.scenario_id, spec.family, spec.kind, spec.workload,
                 spec.clients, len(spec.variants), spec.title)
                for spec in specs]
        print(render_table(
            ("id", "family", "kind", "workload", "clients", "variants",
             "title"), rows))
        print(f"{len(specs)} scenarios")
        return 0
    if args.scenarios_command == "describe":
        spec = get_scenario(args.id)
        print(json.dumps(spec.to_dict(), indent=2))
        return 0
    specs = _resolve_run_specs(args)
    return _run_specs(specs, workers=args.workers, out=args.out)


# -------------------------------------------------------- legacy shims
def cmd_figure(args) -> int:
    from repro.scenarios import get_scenario

    spec = get_scenario(f"fig{args.number}")
    if args.number in (1, 2):
        # fig1 renders a configuration; fig2 traces compilations —
        # neither takes a preset, but the seed still applies to fig2
        spec = spec.customized(seed=args.seed)
    else:
        spec = spec.customized(preset=args.preset, seed=args.seed)
    return _run_specs([spec], workers=args.workers, out=None)


def cmd_sweep(args) -> int:
    from repro.scenarios import saturation_scenario

    # duplicate counts would be identical runs (same config, same
    # seed) and would collide as variant names; keep first occurrences
    spec = saturation_scenario(tuple(dict.fromkeys(args.clients)),
                               preset=args.preset, seed=args.seed)
    return _run_specs([spec], workers=args.workers, out=None)


def cmd_ablation(args) -> int:
    from repro.scenarios import get_scenario

    scenario_ids = {
        "gateways": "abl-gates",
        "dynamic": "abl-dyn",
        "best-plan": "abl-bpsf",
    }
    spec = get_scenario(scenario_ids[args.which]).customized(
        preset=args.preset, seed=args.seed, clients=args.clients)
    return _run_specs([spec], workers=args.workers, out=None)


# ------------------------------------------------------- engine suites
def cmd_experiments(args) -> int:
    """Fan out a suite, print a summary, write BENCH artifacts."""
    from repro.experiments.ablations import ablation_suite_jobs
    from repro.experiments.engine import (
        figure_suite_jobs,
        run_jobs,
        saturation_suite_jobs,
        write_artifact,
    )

    suites = {}
    if args.suite in ("figures", "all"):
        suites["figures"] = figure_suite_jobs(preset=args.preset,
                                              seed=args.seed)
    if args.suite in ("ablations", "all"):
        suites["ablations"] = ablation_suite_jobs(preset=args.preset,
                                                  seed=args.seed)
    if args.suite in ("saturation", "all"):
        suites["saturation"] = saturation_suite_jobs(preset=args.preset,
                                                     seed=args.seed)

    failed = False
    for suite_name, jobs in suites.items():
        print(f"== suite {suite_name}: {len(jobs)} runs, "
              f"workers={args.workers}, preset={args.preset}")
        batch = run_jobs(jobs, workers=args.workers,
                         progress=lambda line: print(f"   {line}"))
        path = write_artifact(args.out, suite_name, batch)
        rows = [(name, r.completed, r.failed, r.degraded,
                 f"{r.wall_seconds:.1f}s")
                for name, r in batch.results.items()]
        print(render_table(
            ("run", "completed", "errors", "degraded", "wall"), rows))
        print(f"   wall {batch.wall_seconds:.1f}s -> {path}")
        if batch.errors:
            failed = True
            for name, error in batch.errors.items():
                print(f"   FAILED {name}: {error}")
    return 1 if failed else 0


# ------------------------------------------------------------ one-offs
def cmd_query(args) -> int:
    workload = make_workload(args.workload)
    server = DatabaseServer(
        paper_server_config(throttling=not args.no_throttle),
        workload.build_catalog())
    query = workload.generate(random.Random(args.seed))
    print(f"-- template: {query.template}")
    print(query.text)
    print()
    outcome = server.execute_sync(query.text)
    if not outcome.ok:
        print(f"FAILED: {outcome.error_kind}: {outcome.error_message}")
        return 1
    print(f"compile  {format_duration(outcome.compile_time)}  "
          f"peak {format_bytes(outcome.compile_peak_bytes)}"
          f"{'  [degraded]' if outcome.degraded_plan else ''}")
    print(f"execute  {format_duration(outcome.execution_time)}  "
          f"spilled={outcome.spilled}")
    return 0


def cmd_monitors(_args) -> int:
    from repro.experiments import figure1_monitors

    print(figure1_monitors())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "scenarios": cmd_scenarios,
        "figure": cmd_figure,
        "sweep": cmd_sweep,
        "ablation": cmd_ablation,
        "experiments": cmd_experiments,
        "query": cmd_query,
        "monitors": cmd_monitors,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
