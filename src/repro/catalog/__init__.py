"""Schema metadata and optimizer statistics.

The catalog holds table/column/index definitions plus the statistics
(row counts, distinct-value counts, equi-depth histograms) the
cardinality estimator consumes.  It also owns the
:class:`~repro.storage.pagemap.PageMap` so every table has an on-disk
layout the buffer pool can address.
"""

from repro.catalog.schema import Column, ColumnType, Index, Table
from repro.catalog.statistics import ColumnStatistics, Histogram
from repro.catalog.catalog import Catalog

__all__ = [
    "Catalog",
    "Column",
    "ColumnStatistics",
    "ColumnType",
    "Histogram",
    "Index",
    "Table",
]
