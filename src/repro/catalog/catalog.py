"""The catalog: named tables, their statistics and on-disk layout."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.catalog.schema import Column, Table
from repro.catalog.statistics import ColumnStatistics, build_column_statistics
from repro.errors import CatalogError
from repro.storage.pagemap import ChunkRange, PageMap


class Catalog:
    """All schema metadata of one database."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[Tuple[str, str], ColumnStatistics] = {}
        self.pagemap = PageMap()
        #: per-table statistical skew used when synthesizing histograms
        self._skew: Dict[str, float] = {}

    def create_table(self, table: Table, skew: float = 0.0) -> Table:
        """Register a table, lay it out on disk and build statistics."""
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self._skew[key] = skew
        self.pagemap.add_table(key, table.nbytes)
        for column in table.columns:
            self._stats[(key, column.name.lower())] = build_column_statistics(
                column, table.row_count, skew=skew)
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        table = self._tables.pop(key)
        self._skew.pop(key, None)
        for column in table.columns:
            self._stats.pop((key, column.name.lower()), None)
        # the pagemap keeps the layout slot — chunk ids are never reused,
        # matching how real systems avoid dangling page references

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    def merge_from(self, other: "Catalog") -> None:
        """Adopt every table of ``other`` into this catalog.

        Statistics are carried over rather than rebuilt; each adopted
        table gets a fresh on-disk layout slot.  Mixed workloads use
        this to union the schemas of their component workloads.
        """
        for key, table in other._tables.items():
            if key in self._tables:
                raise CatalogError(f"table {table.name!r} already exists")
        for key, table in other._tables.items():
            self._tables[key] = table
            self._skew[key] = other._skew.get(key, 0.0)
            self.pagemap.add_table(key, table.nbytes)
        self._stats.update(other._stats)

    def statistics(self, table: str, column: str) -> ColumnStatistics:
        try:
            return self._stats[(table.lower(), column.lower())]
        except KeyError:
            raise CatalogError(
                f"no statistics for {table}.{column}") from None

    def chunk_range(self, table: str) -> ChunkRange:
        """On-disk chunk range of a table (for the buffer pool)."""
        return self.pagemap.range_of(table.lower())

    @property
    def total_bytes(self) -> int:
        """Total database size (the paper's data mart is 524 GB)."""
        return sum(t.nbytes for t in self._tables.values())
