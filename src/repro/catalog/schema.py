"""Schema objects: tables, columns, indexes."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.errors import CatalogError


class ColumnType(Enum):
    """The small type system of the repro DBMS."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"

    def default_width(self) -> int:
        """Bytes per value used for row-width estimates."""
        return {
            ColumnType.INTEGER: 4,
            ColumnType.DECIMAL: 8,
            ColumnType.VARCHAR: 24,
            ColumnType.DATE: 4,
        }[self]


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    type: ColumnType = ColumnType.INTEGER
    #: number of distinct values (statistics input)
    ndv: int = 1000
    #: inclusive value domain for numeric/date columns
    low: int = 0
    high: int = 999
    #: bytes per value (defaults by type)
    width: Optional[int] = None
    nullable: bool = False

    def __post_init__(self):
        if self.ndv <= 0:
            raise CatalogError(f"column {self.name!r}: ndv must be positive")
        if self.high < self.low:
            raise CatalogError(f"column {self.name!r}: empty domain")

    @property
    def byte_width(self) -> int:
        return self.width if self.width is not None else self.type.default_width()


@dataclass(frozen=True)
class Index:
    """A (possibly clustered) index over some columns of a table."""

    name: str
    columns: Tuple[str, ...]
    clustered: bool = False
    unique: bool = False


@dataclass
class Table:
    """A base table: columns, cardinality, indexes, FK links."""

    name: str
    columns: Tuple[Column, ...]
    row_count: int
    indexes: Tuple[Index, ...] = field(default_factory=tuple)
    #: column name -> (referenced table, referenced column); used by the
    #: cardinality estimator for PK-FK join selectivity
    foreign_keys: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self):
        if self.row_count < 0:
            raise CatalogError(f"table {self.name!r}: negative row count")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"table {self.name!r}: duplicate column names")
        self._by_name = {c.name: c for c in self.columns}
        index_cols = {col for ix in self.indexes for col in ix.columns}
        unknown = index_cols - set(names)
        if unknown:
            raise CatalogError(
                f"table {self.name!r}: index on unknown columns {sorted(unknown)}")

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def row_width(self) -> int:
        """Bytes per row (sum of column widths plus per-row overhead)."""
        return sum(c.byte_width for c in self.columns) + 10

    @property
    def nbytes(self) -> int:
        """Total table size in bytes."""
        return self.row_count * self.row_width

    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)
