"""Optimizer statistics: histograms and per-column summaries.

Statistics are *synthetic but principled*: each column gets an
equi-depth histogram over its declared domain, optionally skewed, so
the cardinality estimator exercises the same code paths it would over
sampled data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.catalog.schema import Column
from repro.errors import CatalogError


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: values in ``[low, high]`` hold ``rows`` rows."""

    low: float
    high: float
    rows: float
    distinct: float


class Histogram:
    """An equi-depth histogram over a numeric domain."""

    def __init__(self, buckets: Sequence[Bucket]):
        if not buckets:
            raise CatalogError("histogram needs at least one bucket")
        for prev, cur in zip(buckets, buckets[1:]):
            if cur.low < prev.high:
                raise CatalogError("histogram buckets overlap")
        self.buckets: Tuple[Bucket, ...] = tuple(buckets)

    @property
    def total_rows(self) -> float:
        return sum(b.rows for b in self.buckets)

    @property
    def low(self) -> float:
        return self.buckets[0].low

    @property
    def high(self) -> float:
        return self.buckets[-1].high

    @classmethod
    def equi_depth(cls, low: float, high: float, rows: float, ndv: float,
                   nbuckets: int = 16, skew: float = 0.0) -> "Histogram":
        """Build a histogram over ``[low, high]``.

        ``skew`` in [0, 1) shifts mass toward the low end of the domain
        (0 = uniform), emulating the skewed distributions of real sales
        data without storing any data.
        """
        if high < low:
            raise CatalogError("empty histogram domain")
        nbuckets = max(1, min(nbuckets, int(ndv)))
        width = (high - low) / nbuckets if nbuckets else 0
        weights = [(1.0 - skew) + 2.0 * skew * (nbuckets - i) / nbuckets
                   for i in range(nbuckets)]
        total_weight = sum(weights)
        buckets: List[Bucket] = []
        for i in range(nbuckets):
            b_low = low + i * width
            b_high = low + (i + 1) * width if i < nbuckets - 1 else high
            share = weights[i] / total_weight
            buckets.append(Bucket(
                low=b_low, high=b_high,
                rows=rows * share,
                distinct=max(1.0, ndv * share),
            ))
        return cls(buckets)

    # -- selectivity ---------------------------------------------------------
    def selectivity_eq(self, value: float) -> float:
        """Fraction of rows where column = value."""
        total = self.total_rows
        if total <= 0:
            return 0.0
        for b in self.buckets:
            if b.low <= value <= b.high:
                return (b.rows / b.distinct) / total
        return 0.0

    def selectivity_range(self, low: Optional[float],
                          high: Optional[float]) -> float:
        """Fraction of rows where ``low <= column <= high`` (either bound
        may be None for an open interval)."""
        total = self.total_rows
        if total <= 0:
            return 0.0
        lo = self.low if low is None else low
        hi = self.high if high is None else high
        if hi < lo:
            return 0.0
        selected = 0.0
        for b in self.buckets:
            span = b.high - b.low
            overlap_lo = max(lo, b.low)
            overlap_hi = min(hi, b.high)
            if overlap_hi < overlap_lo:
                continue
            if span <= 0:
                selected += b.rows
            else:
                selected += b.rows * (overlap_hi - overlap_lo) / span
        return min(1.0, selected / total)


@dataclass
class ColumnStatistics:
    """Everything the estimator knows about one column."""

    column: Column
    row_count: int
    histogram: Histogram

    @property
    def ndv(self) -> float:
        return min(self.column.ndv, max(1, self.row_count))

    def selectivity_eq_const(self, value: float) -> float:
        sel = self.histogram.selectivity_eq(value)
        if sel == 0.0:
            # fall back to the uniform 1/ndv guess for off-histogram values
            sel = 1.0 / self.ndv
        return min(1.0, sel)

    def selectivity_range(self, low: Optional[float],
                          high: Optional[float]) -> float:
        return self.histogram.selectivity_range(low, high)


def build_column_statistics(column: Column, row_count: int,
                            skew: float = 0.0) -> ColumnStatistics:
    """Synthesize statistics for a column from its declared domain."""
    hist = Histogram.equi_depth(
        low=column.low, high=column.high,
        rows=float(max(row_count, 1)), ndv=float(column.ndv),
        nbuckets=16, skew=skew,
    )
    return ColumnStatistics(column=column, row_count=row_count, histogram=hist)


def join_ndv(left_ndv: float, right_ndv: float) -> float:
    """Distinct values surviving an equi-join (containment assumption)."""
    return max(1.0, min(left_ndv, right_ndv))


def grouping_ndv(ndvs: Sequence[float], input_rows: float) -> float:
    """Estimated group count for GROUP BY over columns with ``ndvs``.

    Uses the standard product-capped-by-input-cardinality rule.
    """
    product = 1.0
    for ndv in ndvs:
        product *= max(1.0, ndv)
        if product > input_rows:
            return max(1.0, input_rows)
    return max(1.0, min(product, input_rows))
