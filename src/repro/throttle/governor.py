"""The compilation governor: the monitor ladder plus its policy.

The governor owns the gateways, decides from a task's allocated bytes
which monitors it must hold, and (extension (a)) recomputes the
medium/big thresholds from the broker's compilation-memory target:

    threshold_i = target * F_{i-1} / S_{i-1}

where ``F`` is the fraction of the target allotted to the category
below and ``S`` is the number of compilations currently in it — so when
small compilations collectively exceed their share, "the top memory
consumers are forced to upgrade to the medium category" (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import ThrottleConfig
from repro.sim import Environment, GatewayTable, Request
from repro.throttle.gateway import Gateway


@dataclass
class ThrottleTicket:
    """Per-compilation record of monitors held (in acquisition order)."""

    label: str = ""
    held: List[Request] = field(default_factory=list)

    @property
    def level(self) -> int:
        """How many monitors this compilation currently holds."""
        return len(self.held)


class CompilationGovernor:
    """Admission control for concurrent query compilations."""

    def __init__(self, env: Environment, config: ThrottleConfig, cpus: int,
                 time_scale: float = 1.0):
        self.env = env
        self.config = config
        self.enabled = config.enabled
        #: ladder counters, column-wise (one row per gateway); each
        #: Gateway writes through its view, so the storage is shared
        #: without the throttle hot path knowing about it
        self.stats_table = GatewayTable(max(1, len(config.gateways)))
        self.gateways: List[Gateway] = [
            Gateway(env, g.name, g.capacity(cpus), g.timeout, time_scale,
                    stats=self.stats_table.view(i))
            for i, g in enumerate(config.gateways)
        ]
        #: static thresholds from configuration (bytes, increasing)
        self.static_thresholds = [g.threshold for g in config.gateways]
        #: effective thresholds (replaced when dynamic ones are active)
        self.thresholds = list(self.static_thresholds)
        #: last compilation-memory target received from the broker
        self.compile_target: Optional[int] = None
        #: lifetime count of threshold recomputations (diagnostics)
        self.recomputations = 0

    # -- category census -----------------------------------------------------
    def census(self) -> List[int]:
        """Number of compilations whose *highest* monitor is level i.

        Index 0 counts small-category compilations (holding the small
        monitor only), etc.  Compilations below the first threshold are
        not tracked — they run unthrottled.
        """
        counts = []
        for i, gateway in enumerate(self.gateways):
            above = (self.gateways[i + 1].active
                     if i + 1 < len(self.gateways) else 0)
            counts.append(max(0, gateway.active - above))
        return counts

    # -- dynamic thresholds (extension a) --------------------------------------
    def set_compile_target(self, target: Optional[int]) -> None:
        """Broker notification: recompute thresholds from ``target``.

        ``None`` (no memory pressure) restores the static ladder.
        """
        self.compile_target = target
        if target is None or not self.config.dynamic_thresholds:
            self.thresholds = list(self.static_thresholds)
            return
        self.recomputations += 1
        census = self.census()
        fractions = (self.config.small_fraction,
                     self.config.medium_fraction)
        thresholds = [self.static_thresholds[0]]
        for level in range(1, len(self.gateways)):
            fraction = fractions[min(level - 1, len(fractions) - 1)]
            population = max(1, census[level - 1])
            dynamic = int(target * fraction / population)
            floor = self.config.min_dynamic_threshold
            prior = thresholds[level - 1]
            # keep the ladder increasing and never below the floor,
            # never above the static threshold (dynamic only tightens)
            value = max(floor, prior + 1,
                        min(dynamic, self.static_thresholds[level]))
            thresholds.append(value)
        self.thresholds = thresholds

    # -- admission --------------------------------------------------------------
    def required_level(self, nbytes: int) -> int:
        """How many monitors a task using ``nbytes`` must hold."""
        level = 0
        for threshold in self.thresholds:
            if nbytes > threshold:
                level += 1
            else:
                break
        return level

    def ensure(self, ticket: ThrottleTicket, nbytes: int):
        """Process generator: acquire any monitors newly required by a
        task whose allocation has grown to ``nbytes``.

        Monitors are acquired strictly in ladder order.  Raises
        :class:`~repro.errors.GatewayTimeoutError` if a wait exceeds
        the monitor's timeout; the caller is responsible for releasing
        the ticket (monitors already held stay held until then).
        """
        if not self.enabled:
            return
        needed = self.required_level(nbytes)
        while ticket.level < needed:
            gateway = self.gateways[ticket.level]
            request = yield from gateway.acquire()
            ticket.held.append(request)

    def release(self, ticket: ThrottleTicket) -> None:
        """Release all held monitors in reverse acquisition order."""
        while ticket.held:
            request = ticket.held.pop()
            level = len(ticket.held)
            self.gateways[level].release(request)

    # -- reporting ----------------------------------------------------------------
    def describe(self) -> str:
        """Figure 1-style rendering of the monitor ladder."""
        from repro.units import format_bytes

        lines = ["compilation memory monitors:"]
        for gateway, threshold in zip(self.gateways, self.thresholds):
            lines.append(
                f"  >{format_bytes(threshold):>10}  {gateway.name:<7}"
                f" limit={gateway.capacity:<3} timeout={gateway.timeout:.0f}s"
                f" active={gateway.active} waiting={gateway.waiting}")
        return "\n".join(lines)
