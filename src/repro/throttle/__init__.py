"""★ Core contribution: query-compilation throttling (paper §4).

A ladder of memory monitors ("gateways") with progressively higher
memory thresholds and progressively lower concurrency limits.  A
compilation acquires monitor *i* once its own allocated bytes cross
threshold *i*, blocks when the monitor is full, and releases in reverse
order when compilation ends.  Timeouts grow with monitor level.  The
medium/big thresholds can be recomputed dynamically from the Memory
Broker's compilation target via ``threshold = target * F / S``
(extension (a) of the paper).
"""

from repro.throttle.gateway import Gateway, GatewayStats
from repro.throttle.governor import CompilationGovernor, ThrottleTicket

__all__ = [
    "CompilationGovernor",
    "Gateway",
    "GatewayStats",
    "ThrottleTicket",
]
