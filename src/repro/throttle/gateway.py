"""One memory monitor of the throttling ladder."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GatewayTimeoutError
from repro.sim import Environment, Request, Resource


@dataclass
class GatewayStats:
    """Cumulative counters for one monitor.

    A ladder owned by the :class:`~repro.throttle.governor.
    CompilationGovernor` stores these column-wise in one
    :class:`~repro.sim.state.GatewayTable` (a :class:`~repro.sim.state.
    GatewayStatsView` has this exact attribute surface); this dataclass
    remains the stand-alone form for gateways built directly.
    """

    acquires: int = 0
    timeouts: int = 0
    total_wait: float = 0.0
    peak_queue: int = 0

    def mean_wait(self) -> float:
        return self.total_wait / self.acquires if self.acquires else 0.0


class Gateway:
    """A counted monitor with FIFO admission and a wait timeout.

    ``capacity`` is the number of concurrent compilations admitted
    (4/CPU for the small gateway, 1/CPU medium, 1 big).  ``stats``
    accepts any object with the :class:`GatewayStats` attribute
    surface (the governor passes array-backed table views).
    """

    def __init__(self, env: Environment, name: str, capacity: int,
                 timeout: float, time_scale: float = 1.0, stats=None):
        self.env = env
        self.name = name
        self.timeout = timeout
        self._time_scale = time_scale
        self._resource = Resource(env, capacity=capacity)
        self.stats = stats if stats is not None else GatewayStats()

    @property
    def capacity(self) -> int:
        return self._resource.capacity

    @property
    def active(self) -> int:
        """Compilations currently holding this monitor."""
        return self._resource.count

    @property
    def waiting(self) -> int:
        return self._resource.queued

    def acquire(self):
        """Process generator: take one slot or raise GatewayTimeoutError.

        Returns the granted :class:`~repro.sim.resources.Request`,
        which must be passed back to :meth:`release`.
        """
        started = self.env.now
        req = self._resource.request()
        self.stats.peak_queue = max(self.stats.peak_queue,
                                    self._resource.queued)
        timeout = self.env.timeout(self.timeout / self._time_scale)
        yield self.env.any_of([req, timeout])
        if not req.granted:
            self._resource.cancel(req)
            self.stats.timeouts += 1
            raise GatewayTimeoutError(self.name, self.env.now - started)
        self.stats.acquires += 1
        self.stats.total_wait += self.env.now - started
        return req

    def release(self, request: Request) -> None:
        """Give a slot back, admitting the next queued compilation."""
        self._resource.release(request)
