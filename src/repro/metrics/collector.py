"""The per-run metrics collector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.timeseries import BucketSeries, GaugeSeries


@dataclass
class QueryRecord:
    """Everything measured about one query attempt."""

    client: int
    template: str
    submitted: float
    finished: float
    ok: bool
    error_kind: Optional[str] = None
    cached_plan: bool = False
    degraded_plan: bool = False
    compile_time: float = 0.0
    gateway_wait: float = 0.0
    grant_wait: float = 0.0
    execution_time: float = 0.0
    compile_peak_bytes: int = 0
    spilled: bool = False

    @property
    def elapsed(self) -> float:
        return self.finished - self.submitted


class MetricsCollector:
    """Aggregates query outcomes and memory traces for one run."""

    def __init__(self, bucket_width: float = 600.0):
        self.bucket_width = bucket_width
        self.completions = BucketSeries(bucket_width)
        self.failures = BucketSeries(bucket_width)
        self.records: List[QueryRecord] = []
        self.error_counts: Dict[str, int] = {}
        #: clerk name -> usage trace
        self.memory: Dict[str, GaugeSeries] = {}
        self.total_memory = GaugeSeries()

    # -- query outcomes ------------------------------------------------------
    def record_query(self, record: QueryRecord) -> None:
        self.records.append(record)
        if record.ok:
            self.completions.record(record.finished)
        else:
            self.failures.record(record.finished)
            kind = record.error_kind or "unknown"
            self.error_counts[kind] = self.error_counts.get(kind, 0) + 1

    # -- memory sampling --------------------------------------------------------
    def sample_memory(self, t: float, usage_by_clerk: Dict[str, int]) -> None:
        total = 0
        for clerk, used in usage_by_clerk.items():
            series = self.memory.get(clerk)
            if series is None:
                series = GaugeSeries()
                self.memory[clerk] = series
            series.record(t, used)
            total += used
        self.total_memory.record(t, total)

    # -- summaries ----------------------------------------------------------------
    def throughput_series(self, t_from: float, t_to: float):
        return self.completions.series(t_from, t_to)

    def successes(self, t_from: Optional[float] = None,
                  t_to: Optional[float] = None) -> int:
        return self.completions.total(t_from, t_to)

    def failure_total(self) -> int:
        return self.failures.total()

    def success_rate(self) -> float:
        ok = self.completions.total()
        bad = self.failures.total()
        return ok / (ok + bad) if (ok + bad) else 0.0

    def degraded_count(self) -> int:
        return sum(1 for r in self.records if r.ok and r.degraded_plan)

    def mean_compile_time(self) -> float:
        times = [r.compile_time for r in self.records
                 if r.ok and not r.cached_plan]
        return sum(times) / len(times) if times else 0.0

    def mean_execution_time(self) -> float:
        times = [r.execution_time for r in self.records if r.ok]
        return sum(times) / len(times) if times else 0.0
