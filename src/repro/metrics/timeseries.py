"""Small time-series containers for simulation measurements."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class BucketSeries:
    """Counts events into fixed-width time buckets.

    This is the paper's figures' x-axis: "the number of successful
    query completions since the last point in time."
    """

    def __init__(self, bucket_width: float, start: float = 0.0):
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_width = bucket_width
        self.start = start
        self._counts: Dict[int, int] = {}

    def record(self, t: float, count: int = 1) -> None:
        index = int((t - self.start) // self.bucket_width)
        self._counts[index] = self._counts.get(index, 0) + count

    def bucket_time(self, index: int) -> float:
        """Left edge of bucket ``index``."""
        return self.start + index * self.bucket_width

    def series(self, t_from: float, t_to: float) -> List[Tuple[float, int]]:
        """(bucket_start, count) pairs covering [t_from, t_to), holes
        filled with zeros."""
        first = int((t_from - self.start) // self.bucket_width)
        last = int((t_to - self.start) // self.bucket_width)
        return [(self.bucket_time(i), self._counts.get(i, 0))
                for i in range(first, last)]

    def total(self, t_from: Optional[float] = None,
              t_to: Optional[float] = None) -> int:
        if t_from is None and t_to is None:
            return sum(self._counts.values())
        out = 0
        for index, count in self._counts.items():
            t = self.bucket_time(index)
            if t_from is not None and t < t_from:
                continue
            if t_to is not None and t >= t_to:
                continue
            out += count
        return out


class GaugeSeries:
    """Timestamped samples of a continuous quantity (memory usage)."""

    def __init__(self):
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ValueError("samples must be recorded in time order")
        self._times.append(t)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> Sequence[float]:
        return self._times

    @property
    def values(self) -> Sequence[float]:
        return self._values

    def at(self, t: float) -> float:
        """Last sample at or before ``t`` (0.0 before the first)."""
        index = bisect_right(self._times, t) - 1
        return self._values[index] if index >= 0 else 0.0

    def mean(self, t_from: Optional[float] = None,
             t_to: Optional[float] = None) -> float:
        values = [v for t, v in zip(self._times, self._values)
                  if (t_from is None or t >= t_from)
                  and (t_to is None or t < t_to)]
        return sum(values) / len(values) if values else 0.0

    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0
