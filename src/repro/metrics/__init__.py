"""Measurement: time series, per-query records, reports.

The collector reproduces the paper's measurement protocol: completions
bucketed into time slices (Figures 3–5 plot "successful query
completions since the last point in time"), an error taxonomy
(out-of-memory vs gateway timeout vs grant timeout), and per-clerk
memory traces sampled on the broker cadence.
"""

from repro.metrics.timeseries import BucketSeries, GaugeSeries
from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.metrics.report import ascii_chart, render_table

__all__ = [
    "BucketSeries",
    "GaugeSeries",
    "MetricsCollector",
    "QueryRecord",
    "ascii_chart",
    "render_table",
]
