"""Plain-text rendering of results: tables and ASCII charts.

The benchmark harness prints the paper's figures as aligned series
tables plus a quick ASCII chart, so the shape (who wins, where the
knee is) is visible directly in terminal output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned fixed-width text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_format_cell(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(value.rjust(width)
                         for value, width in zip(row, widths))
        lines.append(line)
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def ascii_chart(series: Dict[str, List[Tuple[float, float]]],
                height: int = 12, width: int = 64,
                title: str = "") -> str:
    """Plot one or more (t, value) series as an ASCII chart.

    Each series gets a marker character; markers overwrite left to
    right in declaration order.
    """
    markers = "*o+x#@"
    points: List[Tuple[float, float, str]] = []
    for index, (_name, data) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for t, v in data:
            points.append((t, v, marker))
    if not points:
        return f"{title}\n(no data)"
    t_min = min(p[0] for p in points)
    t_max = max(p[0] for p in points)
    v_max = max(p[1] for p in points) or 1.0
    t_span = (t_max - t_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for t, v, marker in points:
        col = int((t - t_min) / t_span * (width - 1))
        row = height - 1 - int(min(v, v_max) / v_max * (height - 1))
        grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{markers[i % len(markers)]}={name}"
                        for i, name in enumerate(series))
    lines.append(legend)
    lines.append(f"{v_max:>8.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{0.0:>8.1f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + "└" + "─" * width)
    lines.append(f"{'':8}  {t_min:<12.0f}{'time (s)':^40}{t_max:>12.0f}")
    return "\n".join(lines)
