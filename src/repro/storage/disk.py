"""A queued disk-array model.

The array is a FIFO server with ``disks`` parallel channels (RAID-0):
each channel streams at one disk's bandwidth, and each request pays a
positioning latency.  When more I/Os are outstanding than channels, the
extra requests queue — which is how buffer-pool starvation translates
into longer query executions in this simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import HardwareConfig
from repro.sim import Environment, Resource


@dataclass
class IoStats:
    """Cumulative physical-I/O counters for one disk array."""

    requests: int = 0
    bytes_read: int = 0
    busy_time: float = 0.0
    queue_wait: float = 0.0

    def mean_wait(self) -> float:
        """Mean queueing delay per request (0 when idle)."""
        return self.queue_wait / self.requests if self.requests else 0.0


class DiskModel:
    """The RAID-0 array of the paper's testbed (8x SCSI, 2 channels)."""

    def __init__(self, env: Environment, hardware: HardwareConfig,
                 time_scale: float = 1.0):
        self.env = env
        self.hardware = hardware
        self._time_scale = time_scale
        self._channels = Resource(env, capacity=hardware.disks)
        self.stats = IoStats()

    @property
    def queue_depth(self) -> int:
        """I/O requests currently waiting for a channel."""
        return self._channels.queued

    def service_time(self, nbytes: int) -> float:
        """Seconds one channel needs to transfer ``nbytes``."""
        seconds = (self.hardware.disk_seek_time
                   + nbytes / self.hardware.disk_bandwidth)
        return seconds / self._time_scale

    def read(self, nbytes: int):
        """Process generator: perform a physical read of ``nbytes``.

        Yields until a channel is free and the transfer completes.
        Returns the total time spent (wait + service).
        """
        started = self.env.now
        req = self._channels.request()
        yield req
        waited = self.env.now - started
        service = self.service_time(nbytes)
        try:
            yield self.env.timeout(service)
        finally:
            self._channels.release(req)
        self.stats.requests += 1
        self.stats.bytes_read += nbytes
        self.stats.busy_time += service
        self.stats.queue_wait += waited
        return self.env.now - started
