"""The database page buffer pool.

A chunk-granularity LRU cache over the on-disk chunk space.  The pool is
*elastic*: it grows into whatever physical memory is free and gives
memory back in two ways — a synchronous shrink callback invoked by the
:class:`~repro.memory.manager.MemoryManager` when another clerk's
allocation does not fit ("stealing pages", §1 of the paper), and a
broker-driven *target* that caps how large the pool lets itself stay.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.memory.manager import MemoryManager
from repro.sim import Environment
from repro.storage.disk import DiskModel
from repro.storage.pagemap import CHUNK_SIZE, ChunkRange

#: chunks transferred per physical I/O request (128 MiB units let the
#: disk array interleave between concurrent scans)
IO_UNIT_CHUNKS = 4


@dataclass
class ReadResult:
    """Outcome of one logical range read."""

    hits: int = 0
    misses: int = 0
    io_time: float = 0.0

    @property
    def chunks(self) -> int:
        return self.hits + self.misses


class BufferPool:
    """LRU chunk cache backed by the disk model."""

    def __init__(self, env: Environment, manager: MemoryManager,
                 disk: DiskModel, floor_bytes: int):
        self.env = env
        self.disk = disk
        self.clerk = manager.clerk("buffer_pool")
        manager.register_shrinker("buffer_pool", self.shrink)
        #: the pool never volunteers to shrink below this size
        self.floor_bytes = floor_bytes
        #: broker-imposed cap; None = grow into all free memory
        self.target_bytes: Optional[int] = None
        self._lru: "OrderedDict[int, bool]" = OrderedDict()
        # cumulative stats
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- size management ---------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current pool size in bytes."""
        return self.clerk.used

    @property
    def resident_chunks(self) -> int:
        return len(self._lru)

    def hit_rate(self) -> float:
        """Lifetime hit rate (0 when nothing read yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def set_target(self, nbytes: Optional[int]) -> None:
        """Broker notification: cap the pool at ``nbytes`` (None = uncapped).

        Shrinks immediately if the pool currently exceeds the target.
        """
        self.target_bytes = nbytes
        if nbytes is not None and self.clerk.used > nbytes:
            self.shrink(self.clerk.used - nbytes, respect_floor=False)

    def shrink(self, goal: int, respect_floor: bool = True) -> int:
        """Evict LRU chunks until ``goal`` bytes are freed (or the floor
        is reached).  Returns the bytes actually freed.  This is the
        callback the memory manager invokes when another component's
        allocation does not fit.
        """
        freed = 0
        floor = self.floor_bytes if respect_floor else 0
        while freed < goal and self._lru:
            if self.clerk.used - CHUNK_SIZE < floor:
                break
            self._lru.popitem(last=False)
            self.clerk.free(CHUNK_SIZE)
            self.evictions += 1
            freed += CHUNK_SIZE
        return freed

    def _admit(self, chunk: int) -> None:
        """Bring one chunk into the pool, evicting/replacing as needed."""
        if self.target_bytes is not None:
            while (self.clerk.used + CHUNK_SIZE > self.target_bytes
                   and self._lru):
                self._lru.popitem(last=False)
                self.clerk.free(CHUNK_SIZE)
                self.evictions += 1
            if self.clerk.used + CHUNK_SIZE > self.target_bytes:
                return  # target below one chunk: pass-through read
        if not self.clerk.try_allocate(CHUNK_SIZE):
            # No free physical memory: replace our own LRU chunk.
            if not self._lru:
                return  # pool squeezed to nothing: pass-through read
            self._lru.popitem(last=False)
            self.evictions += 1
            # reuse the freed chunk's allocation for the new one
            self.clerk.free(CHUNK_SIZE)
            if not self.clerk.try_allocate(CHUNK_SIZE):
                return
        self._lru[chunk] = True

    # -- the read path -------------------------------------------------------
    def _admission_capacity(self) -> int:
        """How large the pool could get right now (target or elastic)."""
        if self.target_bytes is not None:
            return self.target_bytes
        return self.clerk.used + self.clerk.manager.available

    def read_range(self, crange: ChunkRange):
        """Process generator: read every chunk of ``crange``.

        Cache hits are free; misses are batched into IO_UNIT_CHUNKS-sized
        physical reads.  Scans larger than half the pool's attainable
        size bypass admission (scan resistance): they would evict the
        entire working set for pages never re-read before their own
        next eviction.  Returns a :class:`ReadResult`.
        """
        result = ReadResult()
        started = self.env.now
        admit = crange.nbytes <= 0.5 * self._admission_capacity()
        pending = 0  # missed chunks not yet transferred
        for chunk in crange:
            if chunk in self._lru:
                self._lru.move_to_end(chunk)
                self.hits += 1
                result.hits += 1
                continue
            self.misses += 1
            result.misses += 1
            if admit:
                self._admit(chunk)
            pending += 1
            if pending >= IO_UNIT_CHUNKS:
                yield from self.disk.read(pending * CHUNK_SIZE)
                pending = 0
        if pending:
            yield from self.disk.read(pending * CHUNK_SIZE)
        result.io_time = self.env.now - started
        return result

    def warm(self, crange: ChunkRange) -> int:
        """Synchronously mark chunks resident (test/setup helper).

        Returns how many chunks were admitted.
        """
        admitted = 0
        for chunk in crange:
            if chunk not in self._lru:
                before = len(self._lru)
                self._admit(chunk)
                admitted += int(len(self._lru) != before or chunk in self._lru)
        return admitted
