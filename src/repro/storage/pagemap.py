"""Mapping from tables to on-disk chunks.

Physical I/O and buffer-pool residency are modelled at *chunk*
granularity (a contiguous 32 MiB run of pages) rather than single 8 KiB
pages: a 524 GB data mart is ~17 000 chunks, which keeps the simulation
fast while preserving the locality behaviour that matters — repeated
scans of the same table region hit in cache, scans of cold regions pay
physical I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import CatalogError
from repro.units import MiB

#: bytes per buffer-pool chunk
CHUNK_SIZE = 32 * MiB


@dataclass(frozen=True)
class ChunkRange:
    """A half-open range ``[start, stop)`` of global chunk ids."""

    start: int
    stop: int

    def __post_init__(self):
        if self.stop < self.start:
            raise CatalogError(f"bad chunk range [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))

    def slice(self, offset_fraction: float, length_fraction: float) -> "ChunkRange":
        """A sub-range starting at ``offset_fraction`` of the table and
        covering ``length_fraction`` of it (clamped; at least one chunk
        when the table is non-empty)."""
        n = len(self)
        if n == 0:
            return self
        start = self.start + int(offset_fraction * n)
        length = max(1, int(length_fraction * n))
        start = min(start, self.stop - 1)
        stop = min(start + length, self.stop)
        return ChunkRange(start, stop)

    @property
    def nbytes(self) -> int:
        return len(self) * CHUNK_SIZE


class PageMap:
    """Assigns each table a contiguous run of global chunk ids."""

    def __init__(self):
        self._ranges: Dict[str, ChunkRange] = {}
        self._next_chunk = 0

    def add_table(self, name: str, nbytes: int) -> ChunkRange:
        """Lay out ``nbytes`` of table data; returns its chunk range."""
        if name in self._ranges:
            raise CatalogError(f"table {name!r} already laid out")
        nchunks = max(1, (nbytes + CHUNK_SIZE - 1) // CHUNK_SIZE)
        crange = ChunkRange(self._next_chunk, self._next_chunk + nchunks)
        self._next_chunk += nchunks
        self._ranges[name] = crange
        return crange

    def range_of(self, name: str) -> ChunkRange:
        """The chunk range of a previously laid-out table."""
        try:
            return self._ranges[name]
        except KeyError:
            raise CatalogError(f"table {name!r} has no on-disk layout") from None

    def tables(self) -> Tuple[str, ...]:
        return tuple(self._ranges)

    @property
    def total_chunks(self) -> int:
        return self._next_chunk

    @property
    def total_bytes(self) -> int:
        return self._next_chunk * CHUNK_SIZE
