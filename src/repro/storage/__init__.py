"""The I/O path: disk model and database page buffer pool.

The buffer pool is the paper's principal *victim* component: when many
concurrent compilations take memory, the pool shrinks, its hit rate
falls, executions do more physical I/O, hold their memory grants
longer, and throughput collapses.  Both pieces here are real mechanisms
(queued disk with service times; chunk-granularity LRU cache), so that
coupling emerges rather than being scripted.
"""

from repro.storage.disk import DiskModel, IoStats
from repro.storage.bufferpool import BufferPool
from repro.storage.pagemap import ChunkRange, PageMap, CHUNK_SIZE

__all__ = [
    "BufferPool",
    "CHUNK_SIZE",
    "ChunkRange",
    "DiskModel",
    "IoStats",
    "PageMap",
]
