"""Byte and time unit helpers used throughout the repro DBMS.

Memory quantities are plain ``int`` bytes and simulated time is ``float``
seconds everywhere; these helpers exist so configuration reads naturally
(``4 * GiB``) and reports print readably (``format_bytes``).
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: canonical database page size (SQL Server uses 8 KiB pages)
PAGE_SIZE = 8 * KiB

MINUTE = 60.0
HOUR = 3600.0

_SUFFIXES = [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]


def format_bytes(n: int) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(3 * MiB)``
    returns ``'3.0 MiB'``.  Negative values are formatted with a sign."""
    sign = "-" if n < 0 else ""
    n = abs(int(n))
    for unit, suffix in _SUFFIXES:
        if n >= unit:
            return f"{sign}{n / unit:.1f} {suffix}"
    return f"{sign}{n} B"


def format_duration(seconds: float) -> str:
    """Render a duration in the largest sensible unit (``'2.0 h'``,
    ``'90.0 s'``, ``'250 ms'``)."""
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.1f} min"
    if seconds >= 1.0:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.0f} ms"


def parse_size(text: str) -> int:
    """Parse ``'512MB'``/``'4 GiB'``/``'123'`` into bytes.

    Decimal (MB) and binary (MiB) suffixes are both treated as binary,
    matching common DBA expectations for memory settings.
    """
    s = text.strip().lower().replace(" ", "")
    multipliers = {
        "tib": TiB, "tb": TiB, "t": TiB,
        "gib": GiB, "gb": GiB, "g": GiB,
        "mib": MiB, "mb": MiB, "m": MiB,
        "kib": KiB, "kb": KiB, "k": KiB,
        "b": 1,
    }
    for suffix in sorted(multipliers, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)]
            if not number:
                raise ValueError(f"no numeric part in size {text!r}")
            return int(float(number) * multipliers[suffix])
    return int(float(s))
