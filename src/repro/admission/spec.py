"""The declarative admission axis: who gets a slot, and what must hold.

:class:`AdmissionSpec` rides on a
:class:`~repro.scenarios.spec.ScenarioSpec` (and on
:class:`~repro.experiments.runner.ExperimentConfig`) and selects the
:mod:`policy <repro.admission.policies>` arbitrating the open-loop
admission slots; :class:`SloSpec` declares latency objectives that are
evaluated against the run's ``open_loop`` fact block and surface as
pinned ``slo.*`` facts.  ``None`` (the default everywhere) means
"FIFO, no objectives" — which is what keeps every pre-existing
scenario byte-identical.

Both specs follow the :class:`~repro.traffic.spec.TrafficSpec`
contract: frozen, structurally comparable, JSON round-trippable, with
strict validation that rejects unknown fields and teaches the valid
choices.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: every registered admission policy (see ``repro.admission.policies``)
POLICY_NAMES = ("fifo", "weighted_fair", "tenant_quota", "token_bucket")

#: SLO metrics evaluable against the ``open_loop`` fact block
SLO_METRICS = ("queue_wait", "sojourn")

#: SLO percentile points the fact block publishes
SLO_PERCENTILES = ("p50", "p90", "p99", "max")


def _pairs(value, caster, what: str) -> Tuple[Tuple[str, object], ...]:
    """Canonicalize a mapping (or pair sequence) to sorted tuples."""
    if isinstance(value, dict):
        value = value.items()
    try:
        return tuple(sorted((str(key), caster(item))
                            for key, item in value))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"admission {what} must map tenant "
                                 f"names to numbers: {exc}") from exc


@dataclass(frozen=True)
class AdmissionSpec:
    """One fully-described admission policy.

    ``policy`` names the arbiter; the remaining fields parameterize it
    and are rejected on policies they do not apply to, the same way
    trace-only transforms are rejected on synthetic traffic:

    * ``weights`` — per-tenant slot share weights (``weighted_fair``
      only; unlisted tenants weigh 1.0).  All-unit weights carry no
      differentiation and are pinned byte-identical to ``fifo``.
    * ``queue_limits`` / ``max_in_flight`` — per-tenant admission
      queue caps and concurrent-session caps (``tenant_quota`` only).
    * ``rate`` / ``burst`` — token refill rate (tokens per paper
      second, required) and bucket depth (default 1.0)
      (``token_bucket`` only).
    """

    policy: str = "fifo"
    #: tenant -> weight, deep-frozen to sorted pairs (weighted_fair)
    weights: Tuple[Tuple[str, float], ...] = ()
    #: tenant -> max queued sessions, sorted pairs (tenant_quota)
    queue_limits: Tuple[Tuple[str, int], ...] = ()
    #: tenant -> max concurrently admitted sessions (tenant_quota)
    max_in_flight: Tuple[Tuple[str, int], ...] = ()
    #: admission tokens per paper second (token_bucket)
    rate: Optional[float] = None
    #: bucket depth in tokens; bursts up to this size pass (token_bucket)
    burst: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "weights",
                           _pairs(self.weights, float, "weights"))
        object.__setattr__(self, "queue_limits",
                           _pairs(self.queue_limits, int, "queue_limits"))
        object.__setattr__(self, "max_in_flight",
                           _pairs(self.max_in_flight, int,
                                  "max_in_flight"))
        self._validate()

    def _validate(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown admission policy {self.policy!r}; valid "
                f"policies: {', '.join(POLICY_NAMES)}")
        restricted = {
            "weights": ("weighted_fair",),
            "queue_limits": ("tenant_quota",),
            "max_in_flight": ("tenant_quota",),
            "rate": ("token_bucket",),
            "burst": ("token_bucket",),
        }
        for name, policies in restricted.items():
            value = getattr(self, name)
            if value not in (None, ()) and self.policy not in policies:
                raise ConfigurationError(
                    f"admission field {name!r} parameterizes the "
                    f"{policies[0]!r} policy; it does not apply to "
                    f"{self.policy!r}")
        for tenant, weight in self.weights:
            if not tenant or weight <= 0:
                raise ConfigurationError(
                    f"admission weight for tenant {tenant!r} must be "
                    f"positive, got {weight!r}")
        for tenant, limit in self.queue_limits:
            if not tenant or limit < 0:
                raise ConfigurationError(
                    f"admission queue_limit for tenant {tenant!r} must "
                    f"be >= 0, got {limit!r}")
        for tenant, cap in self.max_in_flight:
            if not tenant or cap < 1:
                raise ConfigurationError(
                    f"admission max_in_flight for tenant {tenant!r} "
                    f"must be >= 1, got {cap!r}")
        if self.policy == "token_bucket":
            if self.rate is None or self.rate <= 0:
                raise ConfigurationError(
                    "token_bucket admission requires a positive 'rate' "
                    "(tokens per paper second)")
            if self.burst is not None and self.burst < 1:
                raise ConfigurationError(
                    f"admission burst must be >= 1 token, got "
                    f"{self.burst!r}")

    # ------------------------------------------------------------ API
    def weights_dict(self) -> Dict[str, float]:
        return dict(self.weights)

    def queue_limits_dict(self) -> Dict[str, int]:
        return dict(self.queue_limits)

    def max_in_flight_dict(self) -> Dict[str, int]:
        return dict(self.max_in_flight)

    def to_dict(self) -> dict:
        """The JSON-ready document form (defaults omitted)."""
        doc: dict = {"policy": self.policy}
        if self.weights:
            doc["weights"] = {t: w for t, w in self.weights}
        if self.queue_limits:
            doc["queue_limits"] = {t: n for t, n in self.queue_limits}
        if self.max_in_flight:
            doc["max_in_flight"] = {t: n for t, n in self.max_in_flight}
        if self.rate is not None:
            doc["rate"] = self.rate
        if self.burst is not None:
            doc["burst"] = self.burst
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "AdmissionSpec":
        """Parse an admission document, rejecting unknown fields."""
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"admission must be a JSON object, got "
                f"{type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown admission field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(known))}")
        return cls(**doc)


@dataclass(frozen=True)
class SloTarget:
    """One latency objective: a percentile of a fact must stay under
    ``max_value`` paper seconds, aggregate or for one tenant."""

    metric: str
    percentile: str
    max_value: float
    tenant: Optional[str] = None

    def __post_init__(self):
        if self.metric not in SLO_METRICS:
            raise ConfigurationError(
                f"unknown SLO metric {self.metric!r}; valid metrics: "
                f"{', '.join(SLO_METRICS)}")
        if self.percentile not in SLO_PERCENTILES:
            raise ConfigurationError(
                f"unknown SLO percentile {self.percentile!r}; valid "
                f"percentiles: {', '.join(SLO_PERCENTILES)}")
        if not isinstance(self.max_value, (int, float)) \
                or isinstance(self.max_value, bool) \
                or self.max_value <= 0:
            raise ConfigurationError(
                f"SLO max_value must be positive paper seconds, got "
                f"{self.max_value!r}")
        if self.tenant is not None:
            if not self.tenant:
                raise ConfigurationError("SLO tenant must be non-empty")
            if self.metric != "queue_wait":
                raise ConfigurationError(
                    "per-tenant SLO targets evaluate against the "
                    "per-tenant queue-wait percentiles; the fact block "
                    f"publishes no per-tenant {self.metric!r}")

    @property
    def key(self) -> str:
        """The ``open_loop`` fact this target evaluates against."""
        stem = f"{self.metric}_{self.percentile}"
        if self.tenant is not None:
            return f"tenant.{self.tenant}.{stem}"
        return stem

    def to_dict(self) -> dict:
        doc: dict = {"metric": self.metric,
                     "percentile": self.percentile,
                     "max_value": self.max_value}
        if self.tenant is not None:
            doc["tenant"] = self.tenant
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "SloTarget":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"SLO target must be a JSON object, got "
                f"{type(doc).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown SLO target field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(known))}")
        return cls(**doc)


@dataclass(frozen=True)
class SloSpec:
    """A set of latency objectives evaluated after every run."""

    targets: Tuple[SloTarget, ...] = ()

    def __post_init__(self):
        targets = tuple(
            target if isinstance(target, SloTarget)
            else SloTarget.from_dict(target) for target in self.targets)
        object.__setattr__(self, "targets", targets)
        if not targets:
            raise ConfigurationError("an SLO spec needs at least one "
                                     "target")
        seen = set()
        for target in targets:
            if target.key in seen:
                raise ConfigurationError(
                    f"duplicate SLO target for {target.key!r}")
            seen.add(target.key)

    def to_dict(self) -> dict:
        return {"targets": [target.to_dict() for target in self.targets]}

    @classmethod
    def from_dict(cls, doc: dict) -> "SloSpec":
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"slo must be a JSON object, got {type(doc).__name__}")
        unknown = sorted(set(doc) - {"targets"})
        if unknown:
            raise ConfigurationError(
                f"unknown slo field(s) {', '.join(unknown)}; the only "
                f"valid field is 'targets'")
        targets = doc.get("targets", [])
        if not isinstance(targets, (list, tuple)):
            raise ConfigurationError("slo targets must be a list")
        return cls(targets=tuple(SloTarget.from_dict(item)
                                 for item in targets))
