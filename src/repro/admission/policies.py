"""Admission policies: pluggable arbiters for the open-loop slots.

The :class:`~repro.traffic.openloop.OpenLoopGenerator` used to grab
slots straight from a FIFO :class:`~repro.sim.resources.Resource`;
every policy here presents that same three-verb surface —
``request`` / ``cancel`` / ``release`` plus the drop-on-arrival
predicate ``would_drop`` — so the generator's admission loop is
policy-agnostic and the default :class:`FifoPolicy` is **byte-identical
to the old inline code** (it delegates to the very same ``Resource``).

* :class:`FifoPolicy` — arrival order, one global queue limit.
* :class:`WeightedFairPolicy` — start-time fair queuing over
  per-tenant weights: each claim is tagged
  ``S = max(V, finish[tenant])`` where ``V`` is the start tag of the
  last granted claim, ``finish[tenant]`` advances by ``1/weight``, and
  grants go to the smallest ``(tag, seq)``.  Work-conserving: an idle
  tenant's share redistributes because grants never wait for it.
  All-unit weights carry no differentiation, so construction
  short-circuits to :class:`FifoPolicy` — pinned by test.
* :class:`TenantQuotaPolicy` — FIFO with per-tenant queue limits and
  per-tenant in-flight caps; a capped tenant's queued claims are
  skipped, never head-of-line blockers.
* :class:`TokenBucketPolicy` — rate-based: each admission consumes a
  token, tokens refill at ``rate`` per paper second up to ``burst``;
  an arrival finding the bucket empty is dropped on arrival.

Determinism: policies react only to the generator's calls and the sim
clock, never to wall time or hash order, so every decision is a pure
function of (spec, seed) on either scheduler kernel.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.events import Event
from repro.sim.resources import Resource


class Claim(Event):
    """A pending claim on one admission slot (policy-owned analogue of
    :class:`~repro.sim.resources.Request`)."""

    __slots__ = ("policy", "tenant", "granted", "tag", "seq")

    def __init__(self, policy, tenant: str):
        super().__init__(policy.env)
        self.policy = policy
        self.tenant = tenant
        #: set True once the slot has been granted
        self.granted = False
        self.tag = 0.0
        self.seq = 0


class FifoPolicy:
    """Arrival-order admission — the pinned default.

    Wraps the same FIFO :class:`Resource` the generator used inline,
    with the same drop predicate, so a ``fifo`` (or absent) admission
    spec reproduces pre-policy artifacts byte for byte.
    """

    name = "fifo"

    def __init__(self, env, capacity: int, queue_limit: int):
        self.env = env
        self.queue_limit = queue_limit
        self.slots = Resource(env, capacity=capacity)

    @property
    def count(self) -> int:
        return self.slots.count

    @property
    def queued(self) -> int:
        return self.slots.queued

    def would_drop(self, tenant: str) -> bool:
        return (self.slots.count >= self.slots.capacity
                and self.slots.queued >= self.queue_limit)

    def request(self, tenant: str):
        return self.slots.request()

    def cancel(self, request) -> None:
        self.slots.cancel(request)

    def release(self, request) -> None:
        self.slots.release(request)


class _QueuedPolicy:
    """Shared queue/grant mechanics for the policy-owned queues."""

    def __init__(self, env, capacity: int, queue_limit: int):
        self.env = env
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.users: List[Claim] = []
        self.queue: List[Claim] = []

    @property
    def count(self) -> int:
        return len(self.users)

    @property
    def queued(self) -> int:
        return len(self.queue)

    def cancel(self, claim: Claim) -> None:
        try:
            self.queue.remove(claim)
        except ValueError:
            pass

    def release(self, claim: Claim) -> None:
        if claim.granted:
            self.users.remove(claim)
            claim.granted = False
            self._on_release(claim)
            self._grant()
        else:
            self.cancel(claim)

    def _on_release(self, claim: Claim) -> None:
        pass

    def _grant(self) -> None:
        raise NotImplementedError


class WeightedFairPolicy(_QueuedPolicy):
    """Start-time fair queuing over per-tenant weights."""

    name = "weighted_fair"

    def __init__(self, env, capacity: int, queue_limit: int,
                 weights: Dict[str, float]):
        super().__init__(env, capacity, queue_limit)
        self.weights = dict(weights)
        self._virtual = 0.0
        self._finish: Dict[str, float] = {}
        self._seq = 0

    def would_drop(self, tenant: str) -> bool:
        return (len(self.users) >= self.capacity
                and len(self.queue) >= self.queue_limit)

    def request(self, tenant: str) -> Claim:
        claim = Claim(self, tenant)
        weight = float(self.weights.get(tenant, 1.0))
        start = max(self._virtual, self._finish.get(tenant, 0.0))
        self._finish[tenant] = start + 1.0 / weight
        claim.tag = start
        claim.seq = self._seq
        self._seq += 1
        self.queue.append(claim)
        self._grant()
        return claim

    def _grant(self) -> None:
        # queues are bounded by queue_limit, so a min-scan beats heap
        # bookkeeping under cancellation
        while self.queue and len(self.users) < self.capacity:
            best = min(self.queue, key=lambda c: (c.tag, c.seq))
            self.queue.remove(best)
            self._virtual = best.tag
            best.granted = True
            self.users.append(best)
            best.succeed(self)


class TenantQuotaPolicy(_QueuedPolicy):
    """FIFO with per-tenant queue limits and in-flight caps."""

    name = "tenant_quota"

    def __init__(self, env, capacity: int, queue_limit: int,
                 queue_limits: Dict[str, int],
                 max_in_flight: Dict[str, int]):
        super().__init__(env, capacity, queue_limit)
        self.queue_limits = dict(queue_limits)
        self.max_in_flight = dict(max_in_flight)
        self._queued: Dict[str, int] = {}
        self._in_flight: Dict[str, int] = {}

    def _can_grant(self, tenant: str) -> bool:
        if len(self.users) >= self.capacity:
            return False
        cap = self.max_in_flight.get(tenant)
        return cap is None or self._in_flight.get(tenant, 0) < cap

    def would_drop(self, tenant: str) -> bool:
        if self._can_grant(tenant):
            return False
        if len(self.queue) >= self.queue_limit:
            return True
        limit = self.queue_limits.get(tenant)
        return (limit is not None
                and self._queued.get(tenant, 0) >= limit)

    def request(self, tenant: str) -> Claim:
        claim = Claim(self, tenant)
        self.queue.append(claim)
        self._queued[tenant] = self._queued.get(tenant, 0) + 1
        self._grant()
        return claim

    def cancel(self, claim: Claim) -> None:
        if claim in self.queue:
            self._queued[claim.tenant] -= 1
        super().cancel(claim)

    def _on_release(self, claim: Claim) -> None:
        self._in_flight[claim.tenant] -= 1

    def _grant(self) -> None:
        # grant the oldest claim whose tenant is under its cap; a
        # capped tenant is skipped (work-conserving), and each grant
        # rescans because it may unblock nothing further
        progressed = True
        while progressed and len(self.users) < self.capacity:
            progressed = False
            for claim in self.queue:
                if not self._can_grant(claim.tenant):
                    continue
                self.queue.remove(claim)
                self._queued[claim.tenant] -= 1
                self._in_flight[claim.tenant] = \
                    self._in_flight.get(claim.tenant, 0) + 1
                claim.granted = True
                self.users.append(claim)
                claim.succeed(self)
                progressed = True
                break


class TokenBucketPolicy:
    """Rate-based admission: no token, no entry.

    Arrivals that find a token proceed through the same FIFO slot
    queue as :class:`FifoPolicy`; arrivals that do not are dropped on
    arrival regardless of queue depth.  The bucket refills lazily from
    the sim clock — ``rate`` is authored in tokens per paper second
    and rescaled onto the sim clock at construction.
    """

    name = "token_bucket"

    def __init__(self, env, capacity: int, queue_limit: int,
                 rate: float, burst: float, time_scale: float = 1.0):
        self.env = env
        self.queue_limit = queue_limit
        self.slots = Resource(env, capacity=capacity)
        # paper seconds elapse time_scale times faster than sim seconds
        self._rate = rate * time_scale
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    @property
    def count(self) -> int:
        return self.slots.count

    @property
    def queued(self) -> int:
        return self.slots.queued

    def _refill(self) -> None:
        now = self.env.now
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last)
                              * self._rate)
            self._last = now

    def would_drop(self, tenant: str) -> bool:
        self._refill()
        if self.tokens < 1.0:
            return True
        return (self.slots.count >= self.slots.capacity
                and self.slots.queued >= self.queue_limit)

    def request(self, tenant: str):
        self._refill()
        self.tokens -= 1.0
        return self.slots.request()

    def cancel(self, request) -> None:
        self.slots.cancel(request)

    def release(self, request) -> None:
        self.slots.release(request)


def make_policy(spec, env, capacity: int, queue_limit: int,
                time_scale: float = 1.0):
    """Instantiate the policy an :class:`AdmissionSpec` describes
    (``None`` = the pinned FIFO default)."""
    if spec is None or spec.policy == "fifo":
        return FifoPolicy(env, capacity, queue_limit)
    if spec.policy == "weighted_fair":
        weights = spec.weights_dict()
        if all(weight == 1.0 for weight in weights.values()):
            # no differentiation to enforce: degenerate to FIFO so
            # equal-weight specs stay byte-identical to `fifo` (pinned)
            return FifoPolicy(env, capacity, queue_limit)
        return WeightedFairPolicy(env, capacity, queue_limit, weights)
    if spec.policy == "tenant_quota":
        return TenantQuotaPolicy(env, capacity, queue_limit,
                                 spec.queue_limits_dict(),
                                 spec.max_in_flight_dict())
    if spec.policy == "token_bucket":
        burst = spec.burst if spec.burst is not None else 1.0
        return TokenBucketPolicy(env, capacity, queue_limit,
                                 spec.rate, burst, time_scale)
    raise AssertionError(f"unreachable policy {spec.policy!r}")
