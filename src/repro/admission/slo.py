"""SLO evaluation: latency objectives over the ``open_loop`` facts.

:func:`evaluate_slo` turns an :class:`~repro.admission.spec.SloSpec`
plus a run's ``open_loop`` fact block into the flat ``slo`` fact
block summaries carry.  Per target (key = the fact it reads, e.g.
``queue_wait_p90`` or ``tenant.steady.queue_wait_p90``):

* ``<key>.observed`` — the fact's value, paper seconds (omitted when
  the run published no such fact — an absent tenant, say);
* ``<key>.target``   — the objective, paper seconds;
* ``<key>.ok``       — 1.0 iff observed <= target (a missing fact is
  a violation: the objective could not be certified).

Plus the aggregates ``ok`` (1.0 iff every target held) and
``violations`` (count).  Every value is a deterministic function of
(spec, seed): the facts flow into artifacts and the results warehouse
as **pinned** ``slo.*`` metrics, usable in ``Expectation``s including
cross-variant ``than_variant`` checks.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.admission.spec import SloSpec


def evaluate_slo(spec: SloSpec,
                 facts: Mapping[str, float]) -> Dict[str, float]:
    """Evaluate every target against an ``open_loop`` fact block."""
    out: Dict[str, float] = {}
    violations = 0
    for target in spec.targets:
        key = target.key
        out[f"{key}.target"] = float(target.max_value)
        observed = facts.get(key)
        if observed is None:
            out[f"{key}.ok"] = 0.0
            violations += 1
            continue
        out[f"{key}.observed"] = float(observed)
        held = float(observed) <= float(target.max_value)
        out[f"{key}.ok"] = 1.0 if held else 0.0
        if not held:
            violations += 1
    out["ok"] = 1.0 if violations == 0 else 0.0
    out["violations"] = float(violations)
    return out
