"""Trace capture: write what a run offered, replayably.

A captured trace is an ordinary :mod:`trace <repro.traffic.trace>`
JSONL file — ``t`` / ``template`` / ``tenant`` per line — plus the
optional ``outcome`` field recording what admission decided
(``read_trace`` validates it; replay ignores it, so outcomes are
documentation, not inputs).

The byte-identity contract: times are written at **full float
precision** (unlike :func:`~repro.traffic.trace.synthesize_trace`,
which rounds for readability), templates are recorded only when the
*arrival* carried one — a synthetic arrival stays template-free so a
replayed session re-draws the identical query from its per-index
RNG — and events appear in offered order, which is arrival-time order
with cohort order on ties.  Replaying the capture through a
trace-mode :class:`~repro.traffic.spec.TrafficSpec` (same
``max_sessions`` / ``queue_limit`` / ``queue_timeout`` / admission
policy, ``rate_scale`` left at 1.0 because the recorded times are
already rescaled) therefore reproduces the originating run's
admission sequence — and its canonical artifact — byte for byte.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional

from repro.sim import state as session_state

#: outcome column code -> the ``outcome`` string a capture records
OUTCOME_NAMES: Dict[int, str] = {
    session_state.QUEUED: "queued",
    session_state.ADMITTED: "admitted",
    session_state.DROPPED_QUEUE: "dropped_queue",
    session_state.DROPPED_TIMEOUT: "dropped_timeout",
    session_state.SUCCEEDED: "succeeded",
    session_state.FAILED: "failed",
}

#: the ``outcome`` strings meaning the session got a slot
ADMITTED_OUTCOMES = frozenset(("admitted", "succeeded", "failed"))

#: the ``outcome`` strings meaning admission refused the session
DROPPED_OUTCOMES = frozenset(("dropped_queue", "dropped_timeout"))


def capture_event(at: float, tenant: str = "default",
                  template: Optional[str] = None,
                  outcome: Optional[str] = None) -> dict:
    """One capture line as a trace document (defaults omitted)."""
    doc: dict = {"t": at}
    if template is not None:
        doc["template"] = template
    if tenant != "default":
        doc["tenant"] = tenant
    if outcome is not None:
        doc["outcome"] = outcome
    return doc


def write_capture(path: str, events: Iterable[dict]) -> int:
    """Write capture events as JSONL; returns the event count."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for doc in events:
            handle.write(json.dumps(doc, sort_keys=True) + "\n")
            count += 1
    return count
