"""Policy-driven admission control, latency SLOs, and trace capture.

The admission subsystem makes *who gets in and when* a first-class,
declarative axis of an experiment:

* :mod:`repro.admission.spec` — the frozen, JSON-round-trippable
  :class:`AdmissionSpec` (policy + parameters) and :class:`SloSpec`
  (latency objectives), riding on scenarios as their ``admission`` /
  ``slo`` axes
* :mod:`repro.admission.policies` — the pluggable
  ``would_drop`` / ``request`` / ``cancel`` / ``release`` arbiters:
  ``fifo`` (pinned byte-identical to the pre-policy inline code),
  ``weighted_fair``, ``tenant_quota``, ``token_bucket``
* :mod:`repro.admission.slo` — objective evaluation over the
  ``open_loop`` fact block into pinned ``slo.*`` facts
* :mod:`repro.admission.capture` — replayable JSONL trace capture of
  what a run offered, with admission outcomes on record

See ``docs/admission.md`` for policy semantics, the SLO contract and
the capture→replay recipe.
"""

from repro.admission.capture import (
    ADMITTED_OUTCOMES,
    DROPPED_OUTCOMES,
    OUTCOME_NAMES,
    capture_event,
    write_capture,
)
from repro.admission.policies import (
    Claim,
    FifoPolicy,
    TenantQuotaPolicy,
    TokenBucketPolicy,
    WeightedFairPolicy,
    make_policy,
)
from repro.admission.slo import evaluate_slo
from repro.admission.spec import (
    POLICY_NAMES,
    SLO_METRICS,
    SLO_PERCENTILES,
    AdmissionSpec,
    SloSpec,
    SloTarget,
)

__all__ = [
    "ADMITTED_OUTCOMES",
    "AdmissionSpec",
    "Claim",
    "DROPPED_OUTCOMES",
    "FifoPolicy",
    "OUTCOME_NAMES",
    "POLICY_NAMES",
    "SLO_METRICS",
    "SLO_PERCENTILES",
    "SloSpec",
    "SloTarget",
    "TenantQuotaPolicy",
    "TokenBucketPolicy",
    "WeightedFairPolicy",
    "capture_event",
    "evaluate_slo",
    "make_policy",
    "write_capture",
]
