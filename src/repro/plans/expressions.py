"""Scalar expressions and predicates.

All expression nodes are immutable and hashable so they can serve as
parts of memo keys.  Column references are *bound*: they carry the
relation alias assigned by the binder, which is unique within a query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import FrozenSet, Optional, Tuple, Union

Value = Union[int, float, str]

#: comparison operators supported by the front end
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class Expr:
    """Base class for all scalar expressions."""

    def referenced_aliases(self) -> FrozenSet[str]:
        """Relation aliases this expression touches."""
        raise NotImplementedError

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        """(alias, column) pairs this expression touches."""
        raise NotImplementedError


def _cached_hash(cls):
    """Class decorator: memoize the dataclass-generated ``__hash__``.

    Expression trees serve as memo keys, so the optimizer hashes the
    same immutable nodes millions of times per experiment; caching the
    value per instance turns each repeat into one attribute load.
    """
    generated = cls.__hash__

    def __hash__(self, _generated=generated):
        h = self.__dict__.get("_hash")
        if h is None:
            h = _generated(self)
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # never pickle the cache: string hashes are per-process
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    cls.__hash__ = __hash__
    cls.__getstate__ = __getstate__
    return cls


@_cached_hash
@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to ``alias.column``."""

    alias: str
    column: str

    def referenced_aliases(self) -> FrozenSet[str]:
        return frozenset({self.alias})

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset({(self.alias, self.column)})

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@_cached_hash
@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""

    value: Value

    def referenced_aliases(self) -> FrozenSet[str]:
        return frozenset()

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@_cached_hash
@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` where op is one of =, <>, <, <=, >, >=."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def referenced_aliases(self) -> FrozenSet[str]:
        return self.left.referenced_aliases() | self.right.referenced_aliases()

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    @property
    def is_equi_join(self) -> bool:
        """True for ``a.x = b.y`` with two distinct relations."""
        return (self.op == "="
                and isinstance(self.left, ColumnRef)
                and isinstance(self.right, ColumnRef)
                and self.left.alias != self.right.alias)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@_cached_hash
@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN low AND high`` (inclusive)."""

    expr: Expr
    low: Expr
    high: Expr

    def referenced_aliases(self) -> FrozenSet[str]:
        return (self.expr.referenced_aliases()
                | self.low.referenced_aliases()
                | self.high.referenced_aliases())

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        return (self.expr.referenced_columns()
                | self.low.referenced_columns()
                | self.high.referenced_columns())

    def __str__(self) -> str:
        return f"{self.expr} BETWEEN {self.low} AND {self.high}"


@_cached_hash
@dataclass(frozen=True)
class And(Expr):
    """Conjunction of predicates."""

    children: Tuple[Expr, ...]

    def referenced_aliases(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for child in self.children:
            out |= child.referenced_aliases()
        return out

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        out: FrozenSet[Tuple[str, str]] = frozenset()
        for child in self.children:
            out |= child.referenced_columns()
        return out

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.children) + ")"


@_cached_hash
@dataclass(frozen=True)
class Or(Expr):
    """Disjunction of predicates."""

    children: Tuple[Expr, ...]

    def referenced_aliases(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for child in self.children:
            out |= child.referenced_aliases()
        return out

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        out: FrozenSet[Tuple[str, str]] = frozenset()
        for child in self.children:
            out |= child.referenced_columns()
        return out

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.children) + ")"


@_cached_hash
@dataclass(frozen=True)
class Arithmetic(Expr):
    """``left op right`` for op in +, -, *, / (used inside aggregates,
    e.g. ``SUM(price * quantity)``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def referenced_aliases(self) -> FrozenSet[str]:
        return self.left.referenced_aliases() | self.right.referenced_aliases()

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


#: aggregate functions supported by the front end
AGGREGATE_FUNCS = ("sum", "count", "avg", "min", "max")


@_cached_hash
@dataclass(frozen=True)
class Aggregate(Expr):
    """``FUNC(arg)``; arg is None for COUNT(*)."""

    func: str
    arg: Optional[Expr] = None
    distinct: bool = False

    def __post_init__(self):
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}")

    def referenced_aliases(self) -> FrozenSet[str]:
        return self.arg.referenced_aliases() if self.arg else frozenset()

    def referenced_columns(self) -> FrozenSet[Tuple[str, str]]:
        return self.arg.referenced_columns() if self.arg else frozenset()

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func.upper()}({prefix}{inner})"


# -- predicate helpers ---------------------------------------------------
@lru_cache(maxsize=16384)
def cached_aliases(expr: Expr) -> FrozenSet[str]:
    """Memoized :meth:`Expr.referenced_aliases`.

    Rule application asks for the alias set of the same (immutable)
    conjuncts thousands of times per optimization; caching here turns
    the recursive frozenset unions into one dict hit.
    """
    return expr.referenced_aliases()


@lru_cache(maxsize=16384)
def conjuncts(predicate: Optional[Expr]) -> Tuple[Expr, ...]:
    """Flatten a predicate into its top-level AND factors."""
    if predicate is None:
        return ()
    if isinstance(predicate, And):
        out = []
        for child in predicate.children:
            out.extend(conjuncts(child))
        return tuple(out)
    return (predicate,)


def make_conjunction(parts) -> Optional[Expr]:
    """Combine predicates with AND; None for an empty list."""
    parts = tuple([p for p in parts if p is not None])
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(parts)
