"""Logical operators — the optimizer's input algebra.

Nodes form a tree (children embedded).  ``payload()`` returns the
node's identity *excluding* children, which is what the memo uses for
duplicate detection once children are replaced by group ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.plans.expressions import Aggregate, ColumnRef, Expr


class LogicalNode:
    """Base class for logical operators."""

    children: Tuple["LogicalNode", ...] = ()

    def payload(self) -> tuple:
        """Hashable identity of this operator minus its children."""
        raise NotImplementedError

    def with_children(self, children: Tuple["LogicalNode", ...]) -> "LogicalNode":
        """Copy of this node with different children."""
        raise NotImplementedError

    def aliases(self) -> FrozenSet[str]:
        """Relation aliases produced by this subtree."""
        out: FrozenSet[str] = frozenset()
        for child in self.children:
            out |= child.aliases()
        return out


@dataclass(frozen=True)
class LogicalGet(LogicalNode):
    """Scan of one base table under an alias, with an optional pushed
    single-table predicate."""

    alias: str
    table: str
    predicate: Optional[Expr] = None

    children = ()

    def payload(self) -> tuple:
        return ("get", self.alias, self.table, self.predicate)

    def with_children(self, children):
        assert not children
        return self

    def aliases(self) -> FrozenSet[str]:
        return frozenset({self.alias})

    def __str__(self) -> str:
        pred = f" [{self.predicate}]" if self.predicate else ""
        return f"Get({self.table} AS {self.alias}){pred}"


class LogicalJoin(LogicalNode):
    """Inner join with an optional condition (None = cross product)."""

    def __init__(self, left: LogicalNode, right: LogicalNode,
                 condition: Optional[Expr] = None):
        self.children = (left, right)
        self.condition = condition

    @property
    def left(self) -> LogicalNode:
        return self.children[0]

    @property
    def right(self) -> LogicalNode:
        return self.children[1]

    def payload(self) -> tuple:
        return ("join", self.condition)

    def with_children(self, children):
        assert len(children) == 2
        return LogicalJoin(children[0], children[1], self.condition)

    def __str__(self) -> str:
        cond = f" ON {self.condition}" if self.condition else ""
        return f"Join({self.left}, {self.right}){cond}"


class LogicalFilter(LogicalNode):
    """Residual predicate applied above a subtree."""

    def __init__(self, child: LogicalNode, predicate: Expr):
        self.children = (child,)
        self.predicate = predicate

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def payload(self) -> tuple:
        return ("filter", self.predicate)

    def with_children(self, children):
        assert len(children) == 1
        return LogicalFilter(children[0], self.predicate)

    def __str__(self) -> str:
        return f"Filter({self.child}, {self.predicate})"


class LogicalProject(LogicalNode):
    """Projection onto a list of expressions."""

    def __init__(self, child: LogicalNode, exprs: Tuple[Expr, ...]):
        self.children = (child,)
        self.exprs = tuple(exprs)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def payload(self) -> tuple:
        return ("project", self.exprs)

    def with_children(self, children):
        assert len(children) == 1
        return LogicalProject(children[0], self.exprs)

    def __str__(self) -> str:
        return f"Project({self.child})"


class LogicalAggregate(LogicalNode):
    """GROUP BY ``keys`` computing ``aggregates``."""

    def __init__(self, child: LogicalNode, keys: Tuple[ColumnRef, ...],
                 aggregates: Tuple[Aggregate, ...]):
        self.children = (child,)
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def payload(self) -> tuple:
        return ("aggregate", self.keys, self.aggregates)

    def with_children(self, children):
        assert len(children) == 1
        return LogicalAggregate(children[0], self.keys, self.aggregates)

    def __str__(self) -> str:
        return f"Aggregate({self.child}, keys={list(map(str, self.keys))})"


class LogicalSort(LogicalNode):
    """ORDER BY at the top of the query."""

    def __init__(self, child: LogicalNode, keys: Tuple[Expr, ...],
                 descending: Tuple[bool, ...]):
        self.children = (child,)
        self.keys = tuple(keys)
        self.descending = tuple(descending)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def payload(self) -> tuple:
        return ("sort", self.keys, self.descending)

    def with_children(self, children):
        assert len(children) == 1
        return LogicalSort(children[0], self.keys, self.descending)

    def __str__(self) -> str:
        return f"Sort({self.child})"
