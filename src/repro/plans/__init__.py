"""Relational plan algebra shared by the binder, optimizer and executor.

``expressions`` holds scalar expressions and predicates; ``logical``
holds the optimizer's input algebra; ``physical`` holds the executable
operators the optimizer's implementation rules produce.
"""

from repro.plans.expressions import (
    Aggregate,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Or,
    conjuncts,
    make_conjunction,
)
from repro.plans.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalSort,
)
from repro.plans.physical import (
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopsJoin,
    PhysicalNode,
    Project,
    Sort,
    StreamAggregate,
    TableScan,
)

__all__ = [
    "Aggregate", "And", "Arithmetic", "Between", "ColumnRef", "Comparison",
    "Expr", "Literal", "Or", "conjuncts", "make_conjunction",
    "LogicalAggregate", "LogicalFilter", "LogicalGet", "LogicalJoin",
    "LogicalNode", "LogicalProject", "LogicalSort",
    "Filter", "HashAggregate", "HashJoin", "NestedLoopsJoin",
    "PhysicalNode", "Project", "Sort", "StreamAggregate", "TableScan",
]
