"""Physical operators — what the optimizer emits and the executor runs.

Each node carries the estimates the optimizer computed for it
(cardinality, output bytes, cost, required workspace memory), because
the executor uses exactly those estimates to ask for a memory grant —
mirroring how a real DBMS sizes grants from compile-time estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.plans.expressions import Aggregate, ColumnRef, Expr


@dataclass
class Estimates:
    """Optimizer estimates attached to a physical operator."""

    rows: float = 0.0
    #: bytes of the operator's output stream
    bytes: float = 0.0
    #: workspace memory this operator wants (hash table / sort buffer)
    memory: float = 0.0
    #: total cost of the subtree rooted here (abstract cost units)
    cost: float = 0.0


class PhysicalNode:
    """Base class for physical operators."""

    children: Tuple["PhysicalNode", ...] = ()

    def __init__(self):
        self.estimates = Estimates()

    @property
    def name(self) -> str:
        return type(self).__name__

    def walk(self):
        """Yield every node of the subtree, root first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_memory(self) -> float:
        """Sum of per-operator workspace needs over the subtree.

        Used to size the query's memory grant; hash pipelines hold
        their tables simultaneously, so the sum (not the max) is the
        honest request.
        """
        return sum(node.estimates.memory for node in self.walk())

    def describe(self, indent: int = 0) -> str:
        """Multi-line plan rendering (EXPLAIN-style)."""
        pad = "  " * indent
        line = (f"{pad}{self._describe_self()}"
                f"  [rows={self.estimates.rows:.0f}"
                f" cost={self.estimates.cost:.0f}]")
        parts = [line]
        for child in self.children:
            parts.append(child.describe(indent + 1))
        return "\n".join(parts)

    def _describe_self(self) -> str:
        return self.name


class TableScan(PhysicalNode):
    """Sequential scan of a base table with an optional filter."""

    def __init__(self, alias: str, table: str,
                 predicate: Optional[Expr] = None):
        super().__init__()
        self.alias = alias
        self.table = table
        self.predicate = predicate
        #: fraction of the table's pages the scan touches (1.0 = full
        #: scan; range predicates on the clustering key reduce it)
        self.scan_fraction = 1.0
        #: where the scanned window starts, as a fraction of the table —
        #: drives buffer-pool locality (hot recent regions vs cold history)
        self.scan_offset = 0.0

    def _describe_self(self) -> str:
        pred = f" WHERE {self.predicate}" if self.predicate else ""
        return f"TableScan({self.table} AS {self.alias}{pred})"


class HashJoin(PhysicalNode):
    """Build on the left child, probe with the right child."""

    def __init__(self, build: PhysicalNode, probe: PhysicalNode,
                 build_keys: Tuple[ColumnRef, ...],
                 probe_keys: Tuple[ColumnRef, ...],
                 residual: Optional[Expr] = None):
        super().__init__()
        self.children = (build, probe)
        self.build_keys = tuple(build_keys)
        self.probe_keys = tuple(probe_keys)
        self.residual = residual

    @property
    def build(self) -> PhysicalNode:
        return self.children[0]

    @property
    def probe(self) -> PhysicalNode:
        return self.children[1]

    def _describe_self(self) -> str:
        keys = ", ".join(f"{b}={p}" for b, p in
                         zip(self.build_keys, self.probe_keys))
        return f"HashJoin({keys})"


class NestedLoopsJoin(PhysicalNode):
    """Tuple-at-a-time join; cheap for tiny inputs, terrible for big ones."""

    def __init__(self, outer: PhysicalNode, inner: PhysicalNode,
                 condition: Optional[Expr] = None):
        super().__init__()
        self.children = (outer, inner)
        self.condition = condition

    @property
    def outer(self) -> PhysicalNode:
        return self.children[0]

    @property
    def inner(self) -> PhysicalNode:
        return self.children[1]

    def _describe_self(self) -> str:
        cond = f" ON {self.condition}" if self.condition else ""
        return f"NestedLoopsJoin{cond}"


class HashAggregate(PhysicalNode):
    """Hash-based grouping (the paper's workload aggregates via hashing)."""

    def __init__(self, child: PhysicalNode, keys: Tuple[ColumnRef, ...],
                 aggregates: Tuple[Aggregate, ...]):
        super().__init__()
        self.children = (child,)
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)

    @property
    def child(self) -> PhysicalNode:
        return self.children[0]

    def _describe_self(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        return f"HashAggregate(keys=[{keys}])"


class StreamAggregate(PhysicalNode):
    """Grouping over sorted input — no hash table, but needs a Sort."""

    def __init__(self, child: PhysicalNode, keys: Tuple[ColumnRef, ...],
                 aggregates: Tuple[Aggregate, ...]):
        super().__init__()
        self.children = (child,)
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)

    @property
    def child(self) -> PhysicalNode:
        return self.children[0]

    def _describe_self(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        return f"StreamAggregate(keys=[{keys}])"


class Sort(PhysicalNode):
    """In-memory (or spilling) sort."""

    def __init__(self, child: PhysicalNode, keys: Tuple[Expr, ...],
                 descending: Tuple[bool, ...] = ()):
        super().__init__()
        self.children = (child,)
        self.keys = tuple(keys)
        self.descending = tuple(descending) or tuple(False for _ in self.keys)

    @property
    def child(self) -> PhysicalNode:
        return self.children[0]

    def _describe_self(self) -> str:
        return f"Sort(keys={[str(k) for k in self.keys]})"


class Filter(PhysicalNode):
    """Residual predicate evaluation above a subtree."""

    def __init__(self, child: PhysicalNode, predicate: Expr):
        super().__init__()
        self.children = (child,)
        self.predicate = predicate

    @property
    def child(self) -> PhysicalNode:
        return self.children[0]

    def _describe_self(self) -> str:
        return f"Filter({self.predicate})"


class Project(PhysicalNode):
    """Compute the output expression list."""

    def __init__(self, child: PhysicalNode, exprs: Tuple[Expr, ...]):
        super().__init__()
        self.children = (child,)
        self.exprs = tuple(exprs)

    @property
    def child(self) -> PhysicalNode:
        return self.children[0]

    def _describe_self(self) -> str:
        return f"Project({len(self.exprs)} exprs)"
