"""CLAIM-SAT — §5.2 prose: "this benchmark produces maximum throughput
with 30 clients … Throughput is reduced with fewer users."

A client sweep on the throttled server: throughput must rise up to the
saturation region and not keep rising linearly past it.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.report import render_table
from benchmarks.conftest import print_banner

CLIENT_SWEEP = (5, 15, 30, 40)


@pytest.fixture(scope="module")
def sweep(preset, seed, sales_workload):
    results = {}
    for clients in CLIENT_SWEEP:
        results[clients] = run_experiment(ExperimentConfig(
            workload="sales", clients=clients, throttling=True,
            preset=preset, seed=seed), workload=sales_workload)
    return results


def test_claim_saturation_knee(benchmark, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print_banner("CLAIM-SAT: completions vs client count (throttled)")
    rows = [(clients, result.completed, result.failed)
            for clients, result in sweep.items()]
    print(render_table(("clients", "completed", "errors"), rows))

    completed = {c: r.completed for c, r in sweep.items()}
    # throughput is reduced with fewer users
    assert completed[5] < completed[30]
    assert completed[15] < completed[30]
    # beyond saturation throughput stops scaling with clients: going
    # 30 -> 40 (+33% offered load) must NOT yield +33% completions
    assert completed[40] < completed[30] * 1.15
