"""Benchmark harness configuration.

Every benchmark prints the series/rows of the paper artifact it
regenerates.  ``REPRO_PRESET`` selects fidelity: the default "smoke"
keeps the whole suite in minutes; "scaled" is the EXPERIMENTS.md
setting; "paper" replays the full 8-hour run (slow).
"""

from __future__ import annotations

import os

import pytest

#: preset used by throughput benchmarks (see repro.experiments.PRESETS)
PRESET = os.environ.get("REPRO_PRESET", "smoke")
#: seed shared by all benchmark runs
SEED = int(os.environ.get("REPRO_SEED", "3"))
#: worker processes for benchmarks that fan out through the engine
WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))
#: when set, a BENCH_benchmarks.json artifact is written there
BENCH_DIR = os.environ.get("REPRO_BENCH_DIR", "")


@pytest.fixture(scope="session")
def preset() -> str:
    return PRESET


@pytest.fixture(scope="session")
def seed() -> int:
    return SEED


@pytest.fixture(scope="session")
def workers() -> int:
    return WORKERS


@pytest.fixture(scope="session")
def sales_workload():
    from repro.experiments.runner import make_workload

    return make_workload("sales")


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


# -- CI artifact: per-benchmark outcomes and durations --------------------
_REPORTS: list = []


def pytest_runtest_logreport(report) -> None:
    # the hook is session-global once this conftest loads; a whole-repo
    # run must not leak unit-test nodeids into the benchmark artifact.
    # Setup-phase errors are recorded too: module-scoped fixtures do
    # the heavy lifting here, and a fixture crash would otherwise
    # leave no trace of the benchmark in the artifact.
    if not report.nodeid.startswith("benchmarks/"):
        return
    if report.when == "call" or (report.when == "setup"
                                 and report.outcome != "passed"):
        _REPORTS.append({
            "test": report.nodeid,
            "outcome": ("error" if report.when == "setup"
                        else report.outcome),
            "duration_seconds": round(report.duration, 3),
        })


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write ``BENCH_benchmarks.json`` when REPRO_BENCH_DIR is set.

    Written even with an empty report list, so CI consumers can tell
    "nothing ran" apart from "artifact step never executed".
    """
    if not BENCH_DIR:
        return
    from repro.experiments.engine import write_bench_document

    write_bench_document(BENCH_DIR, "benchmarks", {
        "preset": PRESET,
        "seed": SEED,
        "exit_status": int(exitstatus),
        "tests": sorted(_REPORTS, key=lambda r: r["test"]),
    })
