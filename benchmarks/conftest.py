"""Benchmark harness configuration.

Every benchmark prints the series/rows of the paper artifact it
regenerates.  ``REPRO_PRESET`` selects fidelity: the default "smoke"
keeps the whole suite in minutes; "scaled" is the EXPERIMENTS.md
setting; "paper" replays the full 8-hour run (slow).
"""

from __future__ import annotations

import os

import pytest

#: preset used by throughput benchmarks (see repro.experiments.PRESETS)
PRESET = os.environ.get("REPRO_PRESET", "smoke")
#: seed shared by all benchmark runs
SEED = int(os.environ.get("REPRO_SEED", "3"))


@pytest.fixture(scope="session")
def preset() -> str:
    return PRESET


@pytest.fixture(scope="session")
def seed() -> int:
    return SEED


@pytest.fixture(scope="session")
def sales_workload():
    from repro.experiments.runner import make_workload

    return make_workload("sales")


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
