"""CLAIM-ERR — §4/§5 prose: throttling trades out-of-memory aborts for
(bounded) gateway timeouts and improves completion rates.

"Properly tuned, this approach allows the DBMS implementer to achieve
a balance between out-of-memory errors and throttle-induced timeouts"
and "reduces resource errors returned to clients".
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.report import render_table
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def results(preset, seed, sales_workload):
    out = {}
    for throttling in (True, False):
        out[throttling] = run_experiment(ExperimentConfig(
            workload="sales", clients=40, throttling=throttling,
            preset=preset, seed=seed), workload=sales_workload)
    return out


def test_claim_error_taxonomy(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    print_banner("CLAIM-ERR: error taxonomy at 40 clients")
    kinds = sorted(set(results[True].error_counts)
                   | set(results[False].error_counts))
    rows = [(kind,
             results[True].error_counts.get(kind, 0),
             results[False].error_counts.get(kind, 0))
            for kind in kinds]
    rows.append(("TOTAL", results[True].failed, results[False].failed))
    rows.append(("completed", results[True].completed,
                 results[False].completed))
    rows.append(("degraded plans", results[True].degraded,
                 results[False].degraded))
    print(render_table(("error kind", "throttled", "unthrottled"), rows))

    throttled, unthrottled = results[True], results[False]
    # resource errors are reduced (dramatically)
    assert throttled.failed < unthrottled.failed / 2
    # the un-throttled failure mode is memory exhaustion
    oom_kinds = {"compile_oom", "execution_oom", "OutOfMemoryError"}
    unthrottled_oom = sum(unthrottled.error_counts.get(k, 0)
                          for k in oom_kinds)
    assert unthrottled_oom > unthrottled.failed * 0.8
    # completion rate improves
    t_rate = throttled.completed / max(
        1, throttled.completed + throttled.failed)
    u_rate = unthrottled.completed / max(
        1, unthrottled.completed + unthrottled.failed)
    assert t_rate > u_rate
