"""FIG2 — Figure 2 "Compilation Throttling Example".

Three staggered compilations under induced memory pressure; their
per-task compilation memory over time shows the blocking plateaus and
the release-to-zero at completion.
"""

from repro.experiments import figure2_trace
from benchmarks.conftest import print_banner


def test_fig2_trace(benchmark):
    trace = benchmark.pedantic(figure2_trace, kwargs={"seed": 11},
                               rounds=1, iterations=1)
    print_banner("Figure 2: compilation memory vs time (Q1, Q2, Q3)")
    print(trace.chart())

    for label in ("Q1", "Q2", "Q3"):
        curve = trace.curves[label]
        peaks = [v for _, v in curve]
        assert max(peaks) > 0, f"{label} never allocated"
        # memory is freed at the end of compilation (paper: "At the end
        # of compilation, memory used in the process is freed")
        assert peaks[-1] == 0, f"{label} still holds memory"
        # at least one visible blocking plateau per traced query
        assert trace.plateau_count(label) >= 1, f"{label} never blocked"
