"""ABL-BPSF — §4.1 extension (b): returning the best already-explored
plan instead of an out-of-memory error "allow[s] the system to better
handle low-memory conditions".
"""

import pytest

from repro.experiments.ablations import ablate_best_plan
from repro.metrics.report import render_table
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def ablation(preset, seed, workers):
    return ablate_best_plan(clients=40, preset=preset, seed=seed,
                            workers=workers)


def test_ablation_best_plan(benchmark, ablation):
    benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    print_banner("ABL-BPSF: best-plan-so-far on/off (40 clients)")
    rows = [(label, r.completed, r.failed, r.degraded,
             r.error_counts.get("compile_oom", 0))
            for label, r in ablation.results.items()]
    print(render_table(
        ("variant", "completed", "errors", "degraded plans",
         "compile OOM"), rows))

    hard = ablation.results["hard_oom"]
    soft = ablation.results["best_plan"]
    # the extension converts compile OOM errors into degraded plans
    assert (soft.error_counts.get("compile_oom", 0)
            < max(1, hard.error_counts.get("compile_oom", 0)))
    assert soft.degraded > hard.degraded
    # and completes at least as many queries
    assert soft.completed >= hard.completed
