"""FIG4 — Figure 4 "Throughput - 35 clients".

Beyond saturation the server is oversubscribed; throttling still
improves throughput for the same client load (paper §5.2.1).
"""

import pytest

from repro.experiments import throughput_figure
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def comparison(preset, seed):
    return throughput_figure(35, preset=preset, seed=seed)


def test_fig4_throughput_35_clients(benchmark, comparison):
    benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    print_banner("Figure 4: Successful Queries/Time (35 clients)")
    print(comparison.render())

    assert comparison.improvement > 0.05
    assert comparison.throttled.failed < comparison.unthrottled.failed
