"""ABL-DYN — §4.1 extension (a): dynamic gateway thresholds derived
from the broker target "allow the system to throttle some workloads
more aggressively when other subcomponents are heavily using memory".
"""

import pytest

from repro.experiments.ablations import ablate_dynamic_thresholds
from repro.metrics.report import render_table
from repro.units import MiB
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def ablation(preset, seed, workers):
    return ablate_dynamic_thresholds(clients=35, preset=preset, seed=seed,
                                     workers=workers)


def test_ablation_dynamic_thresholds(benchmark, ablation):
    benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    print_banner("ABL-DYN: static vs dynamic thresholds (35 clients)")
    rows = [(label, r.completed, r.failed,
             r.memory_by_clerk.get("compilation", 0) / MiB)
            for label, r in ablation.results.items()]
    print(render_table(
        ("variant", "completed", "errors", "compile MiB (mean)"), rows))

    static = ablation.results["static"]
    dynamic = ablation.results["dynamic"]
    # dynamic thresholds bound compilation memory at least as tightly
    assert (dynamic.memory_by_clerk["compilation"]
            <= static.memory_by_clerk["compilation"] * 1.15)
    # and do not lose meaningful throughput doing so
    assert dynamic.completed >= static.completed * 0.85
