"""KERNEL-SCALE — sessions vs wall-clock throughput, both kernels.

The flood scenario at 1k/10k/100k session slots, run on the legacy
heap core and on the calendar-queue wheel.  Two claims are pinned:

* the kernels agree on every simulation-visible number (the
  differential contract, here at benchmark scale rather than the
  harness's small N), and
* the wheel's wall-clock cost grows no worse than the legacy core's
  as the population scales (the reason it exists).

``REPRO_PRESET`` gates the sweep size exactly like fidelity elsewhere:
"smoke" (the tier-1 default) stops at 1k sessions, "scaled" adds 10k,
"paper" runs the full 100k point.  With ``REPRO_BENCH_DIR`` set the
sweep lands in ``BENCH_kernel_scale.json``.
"""

import time

import pytest

from repro.experiments.engine import write_bench_document
from repro.scenarios.facade import run_scenario
from repro.scenarios.library import scale_flood_scenario
from benchmarks.conftest import BENCH_DIR, print_banner

#: preset -> session-slot sizes the sweep covers
SWEEP = {
    "smoke": (1_000,),
    "scaled": (1_000, 10_000),
    "paper": (1_000, 10_000, 100_000),
}
KERNELS = ("legacy", "wheel")


def _sim_facts(result) -> dict:
    """Every metric the simulation determines (wall clock excluded)."""
    return {
        variant: {name: value for name, value in metrics.items()
                  if name != "wall_seconds"}
        for variant, metrics in result.variant_metrics.items()
    }


@pytest.fixture(scope="module")
def sweep(preset, seed):
    sizes = SWEEP.get(preset, SWEEP["smoke"])
    rows = []
    for sessions in sizes:
        facts = {}
        for kernel in KERNELS:
            spec = scale_flood_scenario(sessions=sessions, seed=seed,
                                        kernel=kernel)
            started = time.perf_counter()
            result = run_scenario(spec)
            wall = time.perf_counter() - started
            assert result.ok, result.render()
            facts[kernel] = _sim_facts(result)
            offered = result.variant_metrics["flood"]["openloop.offered"]
            rows.append({
                "sessions": sessions,
                "kernel": kernel,
                "offered": offered,
                "admitted": result.variant_metrics["flood"]
                ["openloop.admitted"],
                "completed": result.variant_metrics["flood"]["completed"],
                "wall_seconds": round(wall, 3),
                "sessions_per_second": round(offered / wall, 1),
            })
        # the differential contract at benchmark scale
        assert facts["legacy"] == facts["wheel"], (
            f"kernels disagree at {sessions} sessions")
    return rows


def test_kernel_scale_sweep(benchmark, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print_banner("Kernel scale: sessions vs wall-clock throughput")
    header = (f"{'sessions':>10} {'kernel':>8} {'offered':>9} "
              f"{'wall s':>8} {'sess/s':>9}")
    print(header)
    for row in sweep:
        print(f"{row['sessions']:>10} {row['kernel']:>8} "
              f"{row['offered']:>9.0f} {row['wall_seconds']:>8.2f} "
              f"{row['sessions_per_second']:>9.1f}")

    # every point offered its full population
    for row in sweep:
        assert row["offered"] >= row["sessions"]

    # the wheel must not scale WORSE than the heap: at the largest
    # size in the sweep it processes sessions at >= half the legacy
    # rate (generous: same-order, while catching a pathological wheel)
    largest = max(row["sessions"] for row in sweep)
    rate = {row["kernel"]: row["sessions_per_second"]
            for row in sweep if row["sessions"] == largest}
    assert rate["wheel"] >= 0.5 * rate["legacy"], rate

    if BENCH_DIR:
        write_bench_document(BENCH_DIR, "kernel_scale", {
            "kernels": list(KERNELS),
            "rows": sweep,
        })
