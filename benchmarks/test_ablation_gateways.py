"""ABL-GATES — §4.1: "dividing query compilations into four memory
usage categories gives the best balance".

Sweeps the number of monitors (0 = un-throttled, 3 = the paper's
ladder) and prints completions and errors per variant.
"""

import pytest

from repro.experiments.ablations import ablate_gateway_count
from repro.metrics.report import render_table
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def ablation(preset, seed, workers):
    return ablate_gateway_count(clients=30, preset=preset, seed=seed,
                                workers=workers)


def test_ablation_gateway_count(benchmark, ablation):
    benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    print_banner("ABL-GATES: monitor-count ablation (30 clients)")
    rows = [(label, r.completed, r.failed)
            for label, r in ablation.results.items()]
    print(render_table(("variant", "completed", "errors"), rows))

    completions = ablation.completions()
    errors = ablation.errors()
    # any throttling beats none
    best_throttled = max(completions[k] for k in completions
                         if k != "0_monitors")
    assert best_throttled > completions["0_monitors"]
    # the full ladder keeps errors lowest (or tied)
    assert errors["3_monitors"] <= min(errors["0_monitors"],
                                       errors["1_monitors"])
