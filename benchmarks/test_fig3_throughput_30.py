"""FIG3 — Figure 3 "Throughput - 30 clients".

Successful query completions per time slice, throttled vs
un-throttled, at the saturation client count.  The paper reports a
~35% throughput improvement and sustained 30–40 completions per slice;
we assert the *shape*: throttling wins by a clearly positive factor
and the throttled series is sustained (no collapse over time).
"""

import pytest

from repro.experiments import throughput_figure
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def comparison(preset, seed):
    return throughput_figure(30, preset=preset, seed=seed)


def test_fig3_throughput_30_clients(benchmark, comparison):
    benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    print_banner("Figure 3: Successful Queries/Time (30 clients)")
    print(comparison.render())

    throttled = comparison.throttled
    unthrottled = comparison.unthrottled
    # who wins: throttling, by a clearly positive factor (paper: ~+35%)
    assert comparison.improvement > 0.10, (
        f"improvement {comparison.improvement:+.1%}")
    # reliability: the throttled server returns far fewer errors
    assert throttled.failed < unthrottled.failed / 2
    # sustained throughput: later buckets do not collapse vs earlier ones
    counts = [c for _, c in throttled.throughput]
    first_half = sum(counts[:len(counts) // 2])
    second_half = sum(counts[len(counts) - len(counts) // 2:])
    assert second_half > 0.5 * first_half
