"""FIG1 — Figure 1 "Memory Monitors".

Regenerates the monitor ladder: thresholds increase, concurrency
limits decrease, timeouts increase.
"""

from repro.experiments import figure1_monitors
from repro.config import default_gateways, paper_server_config
from benchmarks.conftest import print_banner


def test_fig1_monitor_ladder(benchmark):
    text = benchmark(figure1_monitors, True)
    print_banner("Figure 1: memory monitors (threshold up, limit down)")
    print(text)

    gateways = default_gateways()
    cpus = paper_server_config().hardware.cpus
    thresholds = [g.threshold for g in gateways]
    limits = [g.capacity(cpus) for g in gateways]
    timeouts = [g.timeout for g in gateways]
    assert thresholds == sorted(thresholds)
    assert limits == sorted(limits, reverse=True)
    assert timeouts == sorted(timeouts)
    # the paper's concrete ladder: 4/CPU, 1/CPU, 1 total on 8 CPUs
    assert limits == [32, 8, 1]
    for name in ("small", "medium", "big"):
        assert name in text
