"""CLAIM-MEM — §1/§2 prose: un-throttled concurrent compilations
"consume most available memory on the machine and starve query
execution memory and the buffer pool".

Compares mean per-clerk memory between the throttled and un-throttled
runs at the saturation point.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.report import render_table
from repro.units import MiB
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def results(preset, seed, sales_workload):
    out = {}
    for throttling in (True, False):
        out[throttling] = run_experiment(ExperimentConfig(
            workload="sales", clients=30, throttling=throttling,
            preset=preset, seed=seed), workload=sales_workload)
    return out


def test_claim_memory_breakdown(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    print_banner("CLAIM-MEM: mean memory by component (MiB), 30 clients")
    clerks = sorted(set(results[True].memory_by_clerk)
                    | set(results[False].memory_by_clerk))
    rows = [(clerk,
             results[True].memory_by_clerk.get(clerk, 0) / MiB,
             results[False].memory_by_clerk.get(clerk, 0) / MiB)
            for clerk in clerks]
    print(render_table(("component", "throttled", "unthrottled"), rows))

    throttled = results[True].memory_by_clerk
    unthrottled = results[False].memory_by_clerk
    # un-throttled compilation eats a multiple of the throttled amount
    assert (unthrottled["compilation"]
            > 1.5 * throttled["compilation"])
    # and the victims get less memory than under throttling
    assert (unthrottled["workspace"]
            < throttled["workspace"])
