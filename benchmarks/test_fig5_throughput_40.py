"""FIG5 — Figure 5 "Throughput - 40 clients".

The heaviest overload case: "throttling still improves throughput for
a given number of clients" (paper §5.2.1).
"""

import pytest

from repro.experiments import throughput_figure
from benchmarks.conftest import print_banner


@pytest.fixture(scope="module")
def comparison(preset, seed):
    return throughput_figure(40, preset=preset, seed=seed)


def test_fig5_throughput_40_clients(benchmark, comparison):
    benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    print_banner("Figure 5: Successful Queries/Time (40 clients)")
    print(comparison.render())

    assert comparison.improvement > 0.05
    assert comparison.throttled.failed < comparison.unthrottled.failed
