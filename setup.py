"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This shim lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` on older pips) work offline.
"""

from setuptools import setup

setup()
