"""Legacy setup shim.

All real metadata lives in ``pyproject.toml``.  With network access a
plain ``pip install -e .`` works (build isolation provides ``wheel``);
in offline environments without the ``wheel`` package, PEP 660
editable installs fail with ``invalid command 'bdist_wheel'`` and this
shim keeps ``python setup.py develop`` working as a fallback.
"""

from setuptools import setup

setup()
