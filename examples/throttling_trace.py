#!/usr/bin/env python
"""Reproduce Figure 2: compilation memory vs time under throttling.

Three traced compilations (Q1, Q2, Q3) start close together while a
crowd of background compilations keeps the memory monitors occupied.
The printed curves show the paper's signature shape: memory ramps,
flat *blocking plateaus* where a query waits at a monitor, and the
release to zero when compilation completes.

Run:  python examples/throttling_trace.py
"""

from __future__ import annotations

from repro.experiments import figure2_trace
from repro.units import format_bytes


def main() -> None:
    print("simulating three traced compilations under memory pressure …")
    trace = figure2_trace(seed=11)
    print()
    print(trace.chart())
    print()
    for label, curve in trace.curves.items():
        peak = max(v for _, v in curve)
        active = [(t, v) for t, v in curve if v > 0]
        start = active[0][0] if active else 0.0
        end = active[-1][0] if active else 0.0
        print(f"  {label}: peak {format_bytes(peak):>10}, "
              f"compiling {start:.0f}s → {end:.0f}s, "
              f"{trace.plateau_count(label)} blocking plateau(s)")


if __name__ == "__main__":
    main()
