#!/usr/bin/env python
"""Watch the Memory Broker react to a compilation storm (paper §3).

Launches a burst of concurrent SALES compilations and samples per-clerk
memory plus the broker's state every few seconds.  The trace shows the
broker detecting the growth trend, declaring pressure, tightening the
dynamic gateway thresholds, and the buffer pool being steered to its
target instead of being emptied by force.

Run:  python examples/broker_pressure.py
"""

from __future__ import annotations

import random

from repro import DatabaseServer, SalesWorkload, paper_server_config
from repro.metrics.report import render_table
from repro.units import MiB


def main() -> None:
    workload = SalesWorkload()
    server = DatabaseServer(paper_server_config(throttling=True),
                            workload.build_catalog())
    server.start()
    env = server.env
    rng = random.Random(42)

    def compile_client(index: int):
        yield env.timeout(rng.uniform(0, 10))
        while env.now < 180.0:
            query = workload.generate(rng)
            try:
                yield from server.pipeline.compile(query.text, f"c{index}")
            except Exception:
                yield env.timeout(3.0)

    for index in range(24):
        env.process(compile_client(index))

    rows = []

    def sampler():
        while env.now < 180.0:
            usage = server.memory.usage_by_clerk()
            rows.append((
                f"{env.now:.0f}",
                f"{usage.get('compilation', 0) / MiB:.0f}",
                f"{usage.get('buffer_pool', 0) / MiB:.0f}",
                "YES" if server.broker.under_pressure else "no",
                f"{server.governor.thresholds[1] / MiB:.0f}",
                f"{server.governor.thresholds[2] / MiB:.0f}",
                server.pipeline.active,
            ))
            yield env.timeout(15.0)

    env.process(sampler())
    env.run(until=180.0)

    print("broker reaction to a 24-way compilation storm:")
    print()
    print(render_table(
        ("t (s)", "compile MiB", "bufpool MiB", "pressure",
         "medium thr MiB", "big thr MiB", "active compiles"), rows))
    print()
    print(f"broker sweeps: {server.broker.sweeps}, "
          f"threshold recomputations: {server.governor.recomputations}")
    print(f"degraded (best-plan-so-far) compilations: "
          f"{server.pipeline.degraded_plans}")


if __name__ == "__main__":
    main()
