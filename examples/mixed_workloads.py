#!/usr/bin/env python
"""Workload classes and the monitor ladder (paper §4.1 categories).

Compiles a sample of OLTP, TPC-H-like and SALES queries on one server
and reports where each class lands in the throttling ladder:

* OLTP point lookups — small-monitor category (or below the first
  threshold entirely, like the paper's diagnostic queries);
* TPC-H-like analytics — small/medium;
* SALES ad-hoc DSS — medium/big: "one to two orders of magnitude more
  memory than TPC-H queries of similar scale" (§5.1).

Run:  python examples/mixed_workloads.py
"""

from __future__ import annotations

import random

from repro import DatabaseServer, paper_server_config
from repro.metrics.report import render_table
from repro.optimizer import Optimizer
from repro.sql import Binder, parse
from repro.units import MiB
from repro.workload import OltpWorkload, SalesWorkload, TpchWorkload


def peak_bytes(workload, samples: int = 12, seed: int = 4) -> list:
    catalog = workload.build_catalog()
    binder = Binder(catalog)
    optimizer = Optimizer(catalog)
    rng = random.Random(seed)
    peaks = []
    for _ in range(samples):
        query = workload.generate(rng)
        bound = binder.bind(parse(query.text))
        result = optimizer.optimize(bound)
        peaks.append(result.memo_bytes)
    return peaks


def main() -> None:
    config = paper_server_config(throttling=True)
    governor_thresholds = [g.threshold for g in config.throttle.gateways]
    names = ["unthrottled", "small", "medium", "big"]

    def category(nbytes: int) -> str:
        level = sum(1 for t in governor_thresholds if nbytes > t)
        return names[level]

    rows = []
    for workload in (OltpWorkload(), TpchWorkload(), SalesWorkload()):
        peaks = sorted(peak_bytes(workload))
        median = peaks[len(peaks) // 2]
        rows.append((workload.name,
                     f"{peaks[0] / MiB:.1f}",
                     f"{median / MiB:.1f}",
                     f"{peaks[-1] / MiB:.1f}",
                     category(median)))

    print("compilation memory by workload class (MiB):")
    print()
    print(render_table(
        ("workload", "min", "median", "max", "median category"), rows))
    print()
    print("paper §5.1: SALES compiles use 1-2 orders of magnitude more")
    print("memory than TPC-H queries; §4.1: OLTP lands in the small")
    print("category while the biggest DSS compilations serialize.")


if __name__ == "__main__":
    main()
