#!/usr/bin/env python
"""Quickstart: boot the simulated server and run one ad-hoc DSS query.

Shows the full lifecycle the paper studies: SQL text → plan-cache miss
→ throttled compilation (watch the memory monitors) → memory grant →
execution through the buffer pool — with the timing and memory
breakdown printed at the end.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import DatabaseServer, SalesWorkload, paper_server_config
from repro.units import format_bytes, format_duration


def main() -> None:
    # The paper's testbed: 8 CPUs, 4 GiB RAM, 8-disk RAID-0, with the
    # SQL Server 2005 gateway ladder enabled.
    config = paper_server_config(throttling=True)

    # The SALES benchmark schema: ~0.5 TB star/snowflake warehouse.
    workload = SalesWorkload()
    catalog = workload.build_catalog()
    print(f"database: {format_bytes(catalog.total_bytes)} across "
          f"{sum(1 for _ in catalog.tables())} tables")

    server = DatabaseServer(config, catalog)
    print()
    print(server.governor.describe())
    print()

    # One ad-hoc query, uniquified exactly as the paper's load
    # generator does (comment tag + fresh literals).
    query = workload.generate(random.Random(2007))
    print(f"template: {query.template}")
    print(f"query:    {query.text[:120]}...")
    print()

    outcome = server.execute_sync(query.text)
    if not outcome.ok:
        raise SystemExit(f"query failed: {outcome.error_message}")

    print("query completed:")
    print(f"  compile time     {format_duration(outcome.compile_time)}"
          f"  (gateway wait {format_duration(outcome.gateway_wait)})")
    print(f"  compile memory   {format_bytes(outcome.compile_peak_bytes)}"
          f" peak{'  [best-plan-so-far]' if outcome.degraded_plan else ''}")
    print(f"  execution time   {format_duration(outcome.execution_time)}"
          f"  (grant wait {format_duration(outcome.grant_wait)},"
          f" spilled: {outcome.spilled})")
    print(f"  buffer pool      {format_bytes(server.buffer_pool.size_bytes)}"
          f"  hit rate {server.buffer_pool.hit_rate():.1%}")


if __name__ == "__main__":
    main()
