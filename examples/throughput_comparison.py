#!/usr/bin/env python
"""Reproduce Figure 3: throttled vs un-throttled throughput.

Runs the SALES benchmark at the saturation client count twice — once
with the compilation gateways enabled, once without — and prints the
completions-per-time-slice series side by side, like the paper's
Figure 3.  Uses the "smoke" preset by default so it finishes in well
under a minute; pass "scaled" or "paper" for higher fidelity.

Run:  python examples/throughput_comparison.py [preset] [clients]
"""

from __future__ import annotations

import sys

from repro.experiments import throughput_figure


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    clients = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    print(f"running SALES at {clients} clients, preset={preset!r} "
          f"(throttled + un-throttled) …")
    comparison = throughput_figure(clients, preset=preset)
    print()
    print(comparison.render())
    print()
    print(f"paper reference: ≈+35% at 30 clients; "
          f"measured: {comparison.improvement:+.1%}")


if __name__ == "__main__":
    main()
